package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"mqsspulse/internal/qdmi"
	"mqsspulse/internal/qpi"
	"mqsspulse/internal/qrm"
)

// blockGate installs a maintenance hook that parks the QRM worker until
// release is closed, holding every subsequent dispatch in the queue.
func blockGate(c *Client) (release chan struct{}, entered chan struct{}) {
	release = make(chan struct{})
	entered = make(chan struct{}, 16)
	c.QRM().SetMaintenanceHook(func(qdmi.Device) error {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
		return nil
	})
	return release, entered
}

func TestClientCancelQueuedPreventsExecution(t *testing.T) {
	c, _ := testStack(t)
	release, entered := blockGate(c)

	// First submission occupies the worker inside the maintenance hook.
	first, err := c.SubmitCtx(context.Background(), bell(t), "hpcqc-sc", SubmitOptions{Shots: 50})
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	// Second submission sits in the queue; cancel its context.
	ctx, cancel := context.WithCancel(context.Background())
	second, err := c.SubmitCtx(ctx, bell(t), "hpcqc-sc", SubmitOptions{Shots: 50, Tag: "doomed"})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := second.Wait(context.Background()); !errors.Is(err, qrm.ErrCancelled) {
		t.Fatalf("queued cancel: err = %v", err)
	}
	close(release)
	if _, err := first.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The cancelled job never reached the device: exactly one completion.
	deadline := time.Now().Add(5 * time.Second)
	for c.QRM().Stats().Cancelled == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	st := c.QRM().Stats()
	if st.Completed != 1 || st.Cancelled != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRunDeadlineThroughFullStack(t *testing.T) {
	c, _ := testStack(t)
	release, entered := blockGate(c)
	defer close(release)

	backend := &NativeAdapter{Client: c, Target: "hpcqc-sc"}
	// Park the worker so the deadline bites while the job is queued.
	first, err := c.SubmitCtx(context.Background(), bell(t), "hpcqc-sc", SubmitOptions{Shots: 50})
	if err != nil {
		t.Fatal(err)
	}
	_ = first
	<-entered

	start := time.Now()
	_, err = qpi.Run(context.Background(), backend, bell(t),
		qpi.WithShots(50), qpi.WithTimeout(80*time.Millisecond))
	if err == nil {
		t.Fatal("deadline did not fire")
	}
	if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, qrm.ErrCancelled) {
		t.Fatalf("err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Run returned after %v, want ≈80ms", elapsed)
	}
}

func TestHandleStatusAndCancel(t *testing.T) {
	c, _ := testStack(t)
	release, entered := blockGate(c)
	defer close(release)

	backend := &NativeAdapter{Client: c, Target: "hpcqc-sc"}
	h, err := qpi.Start(context.Background(), backend, bell(t), qpi.WithShots(50))
	if err != nil {
		t.Fatal(err)
	}
	if h.ID() == "" {
		t.Fatal("handle without ID")
	}
	<-entered // the submission is now inside the worker
	h.Cancel()
	if _, err := h.Wait(context.Background()); !errors.Is(err, qrm.ErrCancelled) {
		t.Fatalf("err = %v", err)
	}
	if st := h.Status(); st != qpi.ExecCancelled {
		t.Fatalf("status = %v", st)
	}
}

func TestRunBatchPartialFailure(t *testing.T) {
	c, _ := testStack(t)
	good1 := bell(t)
	bad := qpi.NewCircuit("bad", 1, 0).X(9) // out-of-range qubit
	_ = bad.End()
	good2 := bell(t)
	results, err := c.RunBatch(context.Background(), []*qpi.Circuit{good1, bad, good2},
		"hpcqc-sc", SubmitOptions{Shots: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("len = %d", len(results))
	}
	if results[0].Err != nil || results[0].Result == nil || results[0].Result.Shots != 100 {
		t.Fatalf("good1: %+v", results[0])
	}
	if results[1].Err == nil || results[1].Result != nil {
		t.Fatalf("bad entry succeeded: %+v", results[1])
	}
	if results[2].Err != nil || results[2].Result == nil {
		t.Fatalf("good2: %+v", results[2])
	}
}

func TestRunBatchCancelledContext(t *testing.T) {
	c, _ := testStack(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.RunBatch(ctx, []*qpi.Circuit{bell(t)}, "hpcqc-sc", SubmitOptions{Shots: 10}); err == nil {
		t.Fatal("cancelled batch accepted")
	}
}

// TestRunBatchConcurrentSubmitters exercises concurrent RunBatch calls for
// the -race pass: several goroutines batch-submit against the same client
// and device simultaneously.
func TestRunBatchConcurrentSubmitters(t *testing.T) {
	c, _ := testStack(t)
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			kernels := make([]*qpi.Circuit, 6)
			for i := range kernels {
				k := qpi.NewCircuit(fmt.Sprintf("g%d-k%d", g, i), 2, 2).
					H(0).CX(0, 1).Measure(0, 0).Measure(1, 1)
				if err := k.End(); err != nil {
					errCh <- err
					return
				}
				kernels[i] = k
			}
			results, err := c.RunBatch(context.Background(), kernels, "hpcqc-sc",
				SubmitOptions{Shots: 16, Tag: fmt.Sprintf("tenant-%d", g)})
			if err != nil {
				errCh <- err
				return
			}
			for i, r := range results {
				if r.Err != nil {
					errCh <- fmt.Errorf("g%d item %d: %w", g, i, r.Err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestLoweringCacheWaveformSamplesKeyed(t *testing.T) {
	// Two kernels with identical op structure but different sample data
	// under the same waveform name must not share a cache entry.
	c, dev := testStack(t)
	amp := dev.CalibratedPiAmplitude(0)
	make2 := func(scale float64) *qpi.Circuit {
		samples := make([]complex128, 32)
		for i := range samples {
			samples[i] = complex(amp*scale, 0)
		}
		k := qpi.NewCircuit("wf", 1, 1).
			Waveform("w", samples).
			PlayWaveform("q0-drive", "w").
			Measure(0, 0)
		if err := k.End(); err != nil {
			t.Fatal(err)
		}
		return k
	}
	p1, _, err := c.Compile(make2(0.9), "hpcqc-sc")
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := c.Compile(make2(0.4), "hpcqc-sc")
	if err != nil {
		t.Fatal(err)
	}
	if string(p1) == string(p2) {
		t.Fatal("different waveform samples collided in the lowering cache")
	}
	if c.CacheHits() != 0 {
		t.Fatalf("cache hits = %d, want 0 (distinct kernels)", c.CacheHits())
	}
	// Same samples do hit.
	if _, _, err := c.Compile(make2(0.9), "hpcqc-sc"); err != nil {
		t.Fatal(err)
	}
	if c.CacheHits() != 1 {
		t.Fatalf("cache hits = %d, want 1", c.CacheHits())
	}
}

func TestSubmitBypassCache(t *testing.T) {
	c, _ := testStack(t)
	k := bell(t)
	if _, _, err := c.Compile(k, "hpcqc-sc"); err != nil {
		t.Fatal(err)
	}
	// A bypassing submission recompiles without touching hit counters.
	if _, err := c.RunCtx(context.Background(), k, "hpcqc-sc",
		SubmitOptions{Shots: 16, BypassCache: true}); err != nil {
		t.Fatal(err)
	}
	if c.CacheHits() != 0 {
		t.Fatalf("bypass still hit the cache (%d)", c.CacheHits())
	}
	// A normal submission hits.
	if _, err := c.RunCtx(context.Background(), k, "hpcqc-sc", SubmitOptions{Shots: 16}); err != nil {
		t.Fatal(err)
	}
	if c.CacheHits() != 1 {
		t.Fatalf("cache hits = %d", c.CacheHits())
	}
}

func TestRemoteSubmitDeadline(t *testing.T) {
	// A blocked worker holds the remote job; the 150ms context must bound
	// the round trip. Either side may report it first (the adapter's read
	// deadline or the server's wire-propagated timeout) — both are errors
	// delivered promptly.
	c, _ := testStack(t)
	release, entered := blockGate(c)
	defer close(release)

	srv, err := NewServer(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	payload, format, err := c.Compile(bell(t), "hpcqc-sc")
	if err != nil {
		t.Fatal(err)
	}
	// Park the worker so the remote job cannot finish in time.
	first, err := c.SubmitCtx(context.Background(), bell(t), "hpcqc-sc", SubmitOptions{Shots: 16})
	if err != nil {
		t.Fatal(err)
	}
	_ = first
	<-entered

	remote, err := NewRemoteAdapterCtx(context.Background(), srv.Addr(), WithDialTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = remote.SubmitPayloadCtx(ctx, "hpcqc-sc", payload, format, SubmitOptions{Shots: 16})
	if err == nil {
		t.Fatal("remote deadline did not fire")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("remote submit returned after %v, want ≈150ms", elapsed)
	}
}

func TestRemoteCancelledContextPoisonsConnection(t *testing.T) {
	// A mute endpoint never answers, so the context is guaranteed to fire
	// mid-read; the adapter must surface ctx.Err() promptly and poison the
	// half-read connection so later submissions fail fast.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { _, _ = io.Copy(io.Discard, conn) }() // swallow, never reply
		}
	}()

	remote, err := NewRemoteAdapter(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = remote.SubmitPayloadCtx(ctx, "dev", []byte("payload"), qdmi.FormatQIRBase, SubmitOptions{Shots: 16})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("submit returned after %v, want ≈120ms", elapsed)
	}
	if _, err := remote.SubmitPayload("dev", []byte("payload"), qdmi.FormatQIRBase, 16); err == nil {
		t.Fatal("poisoned connection accepted a submission")
	}
}

func TestServerMaxJobTime(t *testing.T) {
	c, _ := testStack(t)
	release, entered := blockGate(c)
	defer close(release)

	srv, err := NewServer(c, "127.0.0.1:0", WithServerMaxJobTime(120*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	payload, format, err := c.Compile(bell(t), "hpcqc-sc")
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.SubmitCtx(context.Background(), bell(t), "hpcqc-sc", SubmitOptions{Shots: 16})
	if err != nil {
		t.Fatal(err)
	}
	_ = first
	<-entered

	remote, err := NewRemoteAdapter(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	// No client deadline: the server-side cap alone bounds the job.
	if _, err := remote.SubmitPayload("hpcqc-sc", payload, format, 16); err == nil {
		t.Fatal("server job cap did not fire")
	}
}
