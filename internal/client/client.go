// Package client implements the MQSS Client of Fig. 2: the orchestration
// layer MQSS Adapters submit jobs through. It routes kernels to the JIT
// compiler and the QRM scheduler for local devices, and over a REST-like
// TCP protocol for remote submission. Three adapters are provided: the
// native compiled QPI adapter (the paper's low-latency C API analogue), an
// interpreted adapter that parses a textual program per call (the
// scripting-runtime stand-in for the Section 5.1 overhead comparison), and
// the remote adapter.
//
// The execution surface is context-aware and asynchronous: SubmitCtx
// returns a scheduler ticket bound to the caller's context, RunCtx waits
// under it, and RunBatch compiles many kernels concurrently and pipelines
// them through the scheduler. Submissions target a single device or — via
// SubmitOptions.Pool — a QRM device pool, in which case the kernel compiles
// against a deterministic representative member and the fleet scheduler
// places the job on the least-loaded one; admission-control rejections
// surface as qrm.ErrOverloaded (also across the remote wire protocol) so
// callers can back off. The pre-context entry points (Submit, Run) remain
// as deprecated shims.
package client

import (
	"bytes"
	"container/list"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"mqsspulse/internal/compiler"
	"mqsspulse/internal/ptemplate"
	"mqsspulse/internal/qdmi"
	"mqsspulse/internal/qpi"
	"mqsspulse/internal/qrm"
	"mqsspulse/internal/readout"
	"mqsspulse/internal/telemetry"
)

// DefaultCacheEntries is the lowering-cache entry bound used until
// SetCacheLimit overrides it. The cache is LRU: under churn past the bound
// the least-recently-compiled kernels fall out first.
const DefaultCacheEntries = 4096

// Client routes finished kernels through compile → schedule → execute.
type Client struct {
	session *qdmi.Session
	qrm     *qrm.Scheduler
	// telem is the client's fleet metrics registry: per-stage latency
	// histograms fed by every traced job's timeline, plus the scheduler's
	// queue-wait histograms and counters (the same registry is installed
	// into the QRM at construction).
	telem *telemetry.Registry

	mu sync.Mutex //mqss:lockrank 10
	// loweringCache memoizes compiled payloads keyed by (device, kernel
	// fingerprint); ablation benchmarks toggle it. It is a bounded LRU
	// (cacheLimit entries; lruList front = most recently used), and every
	// entry records the calibration epoch of the device it was compiled
	// against: a lookup whose target has recalibrated since invalidates
	// the entry instead of serving a stale payload.
	loweringCache map[string]*list.Element
	lruList       *list.List
	cacheLimit    int
	CacheEnabled  bool
	cacheStats    CacheStats
	// templateEntries tracks how many cache entries hold compiled parametric
	// templates (kept incrementally; removeLocked maintains it).
	templateEntries int
}

// cacheEntry stores the compiled payload together with its exchange
// format (so cache hits never re-derive the format from payload bytes)
// and the compile-time calibration epoch of the target device. Template
// entries carry the compiled parametric artifact instead of payload bytes:
// one entry serves every sweep point, so a lookup hit is a bind, not a
// payload reuse.
type cacheEntry struct {
	key     string
	payload []byte
	format  qdmi.ProgramFormat
	epoch   int64
	tpl     *ptemplate.Compiled
}

// CacheStats is a point-in-time snapshot of the lowering-cache counters.
type CacheStats struct {
	// Hits counts lookups served from the cache.
	Hits int64
	// Misses counts lookups that fell through to the JIT compiler.
	Misses int64
	// Evictions counts entries dropped by the LRU bound.
	Evictions int64
	// Invalidations counts entries dropped because the target device's
	// calibration epoch moved past the entry's compile-time epoch.
	Invalidations int64
	// Binds counts template lookups served from a cached compiled template:
	// sweep points that paid a parameter bind instead of a compilation. A
	// healthy N-point sweep shows 1 miss and N−1 binds.
	Binds int64
	// Entries is the current entry count; Limit is the configured bound.
	Entries int
	// Limit is the configured maximum entry count.
	Limit int
	// TemplateEntries is how many current entries are compiled parametric
	// templates (included in Entries).
	TemplateEntries int
}

// New builds a client over a QDMI session with its own QRM scheduler.
func New(session *qdmi.Session) *Client {
	c := &Client{
		session:       session,
		qrm:           qrm.New(session),
		telem:         telemetry.NewRegistry(),
		loweringCache: map[string]*list.Element{},
		lruList:       list.New(),
		cacheLimit:    DefaultCacheEntries,
		CacheEnabled:  true,
	}
	// One registry spans the stack: client compile/bind stages, scheduler
	// queue-wait and dispatch counters, and device execution stages all
	// land in the same snapshot.
	c.qrm.SetTelemetry(c.telem)
	return c
}

// QRM exposes the scheduler (for maintenance-hook installation).
func (c *Client) QRM() *qrm.Scheduler { return c.qrm }

// TelemetryRegistry exposes the client's fleet metrics registry — the
// sink every traced job's stage durations and the scheduler's queue-wait
// histograms accumulate into.
func (c *Client) TelemetryRegistry() *telemetry.Registry { return c.telem }

// Telemetry snapshots the fleet metrics: every counter and latency
// histogram (with p50/p95/p99) accumulated since the client was built.
func (c *Client) Telemetry() telemetry.Snapshot { return c.telem.Snapshot() }

// NewTimeline creates a job timeline attached to the client's metrics
// registry. Callers that compile and submit in separate steps (the remote
// adapter, sweep drivers) create the timeline first so every stage lands
// on one trace; pass it through SubmitOptions.Timeline.
func (c *Client) NewTimeline(traceID string) *telemetry.Timeline {
	return telemetry.NewTimeline(traceID, c.telem)
}

// Devices lists the reachable device names.
func (c *Client) Devices() ([]string, error) { return c.session.Devices() }

// Device resolves a device for direct QDMI queries.
func (c *Client) Device(name string) (qdmi.Device, error) { return c.session.Device(name) }

// CacheHits reports lowering-cache hits (ablation metric).
func (c *Client) CacheHits() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cacheStats.Hits
}

// CacheStats snapshots the lowering-cache counters.
func (c *Client) CacheStats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.cacheStats
	st.Entries = c.lruList.Len()
	st.Limit = c.cacheLimit
	st.TemplateEntries = c.templateEntries
	return st
}

// SetCacheLimit bounds the lowering cache to n entries (values below 1 are
// clamped to 1), evicting least-recently-used entries immediately if the
// cache is already past the new bound.
func (c *Client) SetCacheLimit(n int) {
	if n < 1 {
		n = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cacheLimit = n
	c.evictLocked()
}

// evictLocked drops LRU tail entries until the cache fits its bound.
func (c *Client) evictLocked() {
	for c.lruList.Len() > c.cacheLimit {
		el := c.lruList.Back()
		c.removeLocked(el)
		c.cacheStats.Evictions++
	}
}

// removeLocked unlinks one cache entry from both index and LRU list.
func (c *Client) removeLocked(el *list.Element) {
	entry := el.Value.(*cacheEntry)
	if entry.tpl != nil {
		c.templateEntries--
	}
	delete(c.loweringCache, entry.key)
	c.lruList.Remove(el)
}

// Close shuts down the scheduler.
func (c *Client) Close() { c.qrm.Close() }

// fingerprint builds a cache key from the kernel structure in one linear
// pass over the ops (a strings.Builder, not repeated concatenation).
// Waveform sample data participates through a digest: two kernels that
// define different samples under the same waveform name must not collide.
func fingerprint(k *qpi.Circuit, device string) string {
	var b strings.Builder
	b.Grow(64 + 48*len(k.Ops))
	fmt.Fprintf(&b, "%s/%s/%d/%d/%d", device, k.Name, k.Qubits, k.Classical, len(k.Ops))
	for _, op := range k.Ops {
		fmt.Fprintf(&b, "|%d:%s:%v:%v:%s:%s:%g:%g:%d:%d:%d",
			op.Kind, op.Gate, op.Qubits, op.Params, op.WaveformName, op.Port,
			op.FrequencyHz, op.PhaseRad, op.DelaySamples, op.Qubit, op.Cbit)
	}
	if len(k.Waveforms) > 0 {
		fmt.Fprintf(&b, "|wf:%016x", waveformDigest(k))
	}
	return b.String()
}

// waveformDigest hashes every waveform's sample data in name order.
func waveformDigest(k *qpi.Circuit) uint64 {
	names := make([]string, 0, len(k.Waveforms))
	for name := range k.Waveforms {
		names = append(names, name)
	}
	sort.Strings(names)
	h := fnv.New64a()
	var buf [16]byte
	for _, name := range names {
		_, _ = io.WriteString(h, name)
		_, _ = h.Write([]byte{0})
		for _, s := range k.Waveforms[name].Samples {
			binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(real(s)))
			binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(imag(s)))
			_, _ = h.Write(buf[:])
		}
	}
	return h.Sum64()
}

// Compile lowers a kernel for a device, using the lowering cache when
// enabled.
func (c *Client) Compile(k *qpi.Circuit, device string) ([]byte, qdmi.ProgramFormat, error) {
	payload, format, _, _, err := c.compile(k, device, false)
	return payload, format, err
}

// CompileTraced is Compile with telemetry: the compile span — and a
// cache-hit or cache-miss child — lands on tl, and the returned epoch is
// the calibration epoch the payload was compiled against. It is the
// compile half of the split compile/submit path the remote adapter uses.
func (c *Client) CompileTraced(k *qpi.Circuit, device string, tl *telemetry.Timeline) ([]byte, qdmi.ProgramFormat, int64, error) {
	payload, format, epoch, _, err := c.compileTraced(k, device, false, tl)
	return payload, format, epoch, err
}

// compileTraced wraps compile in a StageCompile span with a cache-hit or
// cache-miss child on tl (nil tl records nothing).
func (c *Client) compileTraced(k *qpi.Circuit, device string, bypassCache bool, tl *telemetry.Timeline) ([]byte, qdmi.ProgramFormat, int64, bool, error) {
	start := time.Now()
	payload, format, epoch, hit, err := c.compile(k, device, bypassCache)
	if err != nil {
		return nil, "", 0, false, err
	}
	d := time.Since(start)
	span := tl.Record(telemetry.StageCompile, device, start, d, 0)
	cacheStage := telemetry.StageCacheMiss
	if hit {
		cacheStage = telemetry.StageCacheHit
	}
	tl.Record(cacheStage, device, start, d, span)
	return payload, format, epoch, hit, nil
}

// deviceEpoch reads a device's calibration epoch. Epoch-unaware devices
// (ErrNotSupported) report zero, which disables downstream staleness
// checks; any other failure — a device advertising the property but
// answering it with the wrong type — propagates, because treating it as
// epoch-unaware would silently drop every staleness protection.
func deviceEpoch(dev qdmi.Device) (int64, error) {
	epoch, err := qdmi.QueryCalibrationEpoch(dev)
	if err != nil {
		if errors.Is(err, qdmi.ErrNotSupported) {
			return 0, nil
		}
		return 0, err
	}
	return epoch, nil
}

// compile lowers a kernel and returns the payload, its exchange format,
// the calibration epoch it was compiled against, and whether the payload
// was served from the lowering cache.
func (c *Client) compile(k *qpi.Circuit, device string, bypassCache bool) ([]byte, qdmi.ProgramFormat, int64, bool, error) {
	if k.IsParametric() {
		return nil, "", 0, false, fmt.Errorf(
			"client: kernel %q carries unbound parameters %v; wrap it in a ptemplate.Template and use SubmitSweepCtx/RunSweep",
			k.Name, k.ParamNames())
	}
	dev, err := c.session.Device(device)
	if err != nil {
		return nil, "", 0, false, err
	}
	// The epoch is read before any lowering query: if a recalibration
	// lands mid-compile the recorded epoch is already superseded, so the
	// dispatch-time check (or the next cache lookup) forces a recompile —
	// the race can only err toward recompiling, never toward staleness.
	epoch, err := deviceEpoch(dev)
	if err != nil {
		return nil, "", 0, false, err
	}
	useCache := c.CacheEnabled && !bypassCache
	key := ""
	if useCache {
		key = fingerprint(k, device)
		c.mu.Lock()
		if el, ok := c.loweringCache[key]; ok {
			entry := el.Value.(*cacheEntry)
			if entry.epoch == epoch {
				c.cacheStats.Hits++
				c.lruList.MoveToFront(el)
				c.mu.Unlock()
				c.telem.Add("client/cache_hits", 1)
				return entry.payload, entry.format, entry.epoch, true, nil
			}
			// Compiled against a calibration the device has left.
			c.removeLocked(el)
			c.cacheStats.Invalidations++
		}
		c.cacheStats.Misses++
		c.mu.Unlock()
		c.telem.Add("client/cache_misses", 1)
	}
	res, err := compiler.Compile(k, dev)
	if err != nil {
		return nil, "", 0, false, err
	}
	format := compiler.FormatFor(res.QIR)
	if useCache {
		c.mu.Lock()
		if el, ok := c.loweringCache[key]; ok {
			// A concurrent compile of the same kernel won the race; keep
			// its entry and just refresh recency.
			c.lruList.MoveToFront(el)
		} else {
			entry := &cacheEntry{key: key, payload: res.Payload, format: format, epoch: epoch}
			c.loweringCache[key] = c.lruList.PushFront(entry)
			c.evictLocked()
		}
		c.mu.Unlock()
	}
	return res.Payload, format, epoch, false, nil
}

// containsPulse reports whether a QIR payload carries the pulse profile
// attribute (format sniffing for raw payloads).
func containsPulse(payload []byte) bool {
	return bytes.Contains(payload, []byte(`"qir_profiles"="pulse"`))
}

// SubmitOptions tunes a submission.
type SubmitOptions struct {
	// Shots is the number of measurement samples (qpi.DefaultShots when
	// zero).
	Shots int
	// ShotWorkers, when positive, spreads the job's independent shots
	// across that many device-side workers (zero keeps the device's
	// configured default). Shot outcomes never depend on worker
	// scheduling or completion order.
	ShotWorkers int
	// Priority orders scheduler dispatch: higher runs first.
	Priority int
	// Tag labels the ticket for tracing and per-tenant accounting.
	Tag string
	// Pool, when non-empty, targets a named QRM device pool instead of the
	// device argument (which is then ignored): the kernel compiles against
	// a deterministic representative member and the scheduler places the
	// job on the least-loaded one.
	Pool string
	// BypassCache skips the lowering cache for this submission.
	BypassCache bool
	// CalibrationEpoch declares the calibration epoch a precompiled
	// payload was built against; it is only consulted by the raw-payload
	// remote path (RemoteAdapter.SubmitPayloadCtx), where the caller did
	// the compiling. Kernel submissions through the client derive the
	// epoch from their own compile step and ignore this field. Zero skips
	// the server's dispatch-time staleness check.
	CalibrationEpoch int64
	// MeasLevel selects the measurement level (discriminated counts by
	// default; kerneled/raw return IQ acquisition records).
	MeasLevel readout.MeasLevel
	// MeasReturn selects per-shot or shot-averaged acquisition records.
	MeasReturn readout.MeasReturn
	// TraceID is the telemetry trace identifier for this submission; empty
	// mints one. Ignored when Timeline is set (the timeline carries its own).
	TraceID string
	// Timeline, when non-nil, is the trace the submission's lifecycle spans
	// are recorded onto — used by callers that already recorded spans (a
	// separate compile step) before submitting. Nil creates a fresh
	// timeline per submission.
	Timeline *telemetry.Timeline
}

// resultFromQDMI converts a device-layer result into the QPI form,
// carrying the acquisition records through unchanged.
func resultFromQDMI(res *qdmi.Result) *qpi.Result {
	return &qpi.Result{
		Counts: res.Counts, Shots: res.Shots, DurationSeconds: res.DurationSeconds,
		MeasLevel: res.MeasLevel, Bits: res.Bits, IQ: res.IQ, Raw: res.Raw,
	}
}

// compileTarget resolves the device a submission compiles against: the
// named device, or — for pool submissions — the pool's first member in
// sorted order. The representative is deterministic so pool submissions
// share lowering-cache entries; RegisterPool's compatibility check is what
// makes the payload runnable on every member.
func (c *Client) compileTarget(device string, opts SubmitOptions) (string, error) {
	if opts.Pool == "" {
		return device, nil
	}
	members, err := c.qrm.PoolMembers(opts.Pool)
	if err != nil {
		return "", err
	}
	return members[0], nil
}

// SubmitCtx compiles and enqueues a kernel under ctx, returning the QRM
// ticket. Cancelling ctx cancels the job wherever it is: a queued ticket
// never reaches the device; a running one is aborted where the device
// supports it. When opts.Pool is set the device argument is ignored and
// the job is placed on the pool's least-loaded member; overload
// rejections surface as qrm.ErrOverloaded.
func (c *Client) SubmitCtx(ctx context.Context, k *qpi.Circuit, device string, opts SubmitOptions) (*qrm.Ticket, error) {
	if err := k.Err(); err != nil {
		return nil, err
	}
	if !k.Finished() {
		return nil, fmt.Errorf("client: kernel %q not finished", k.Name)
	}
	if opts.Shots <= 0 {
		opts.Shots = qpi.DefaultShots
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("client: submit: %w", err)
	}
	target, err := c.compileTarget(device, opts)
	if err != nil {
		return nil, err
	}
	tl := opts.Timeline
	if tl == nil {
		tl = telemetry.NewTimeline(opts.TraceID, c.telem)
	} else {
		tl.AttachRegistry(c.telem)
	}
	payload, format, epoch, _, err := c.compileTraced(k, target, opts.BypassCache, tl)
	if err != nil {
		return nil, err
	}
	req := qrm.Request{
		Device: device, Payload: payload, Format: format,
		Shots: opts.Shots, Priority: opts.Priority, Tag: opts.Tag,
		MeasLevel: opts.MeasLevel, MeasReturn: opts.MeasReturn,
		CalibrationEpoch: epoch, CompiledFor: target,
		Timeline: tl, ShotWorkers: opts.ShotWorkers,
	}
	if opts.Pool != "" {
		req.Device, req.Pool = "", opts.Pool
	}
	return c.qrm.SubmitCtx(ctx, req)
}

// RunCtx is the synchronous context-aware path: compile, schedule, and
// wait, all bounded by one ctx.
func (c *Client) RunCtx(ctx context.Context, k *qpi.Circuit, device string, opts SubmitOptions) (*qpi.Result, error) {
	tk, err := c.SubmitCtx(ctx, k, device, opts)
	if err != nil {
		return nil, err
	}
	res, err := tk.Wait(ctx)
	if err != nil {
		return nil, err
	}
	return resultFromQDMI(res), nil
}

// Submit compiles and enqueues a kernel detached from any context.
//
// Deprecated: use SubmitCtx so cancellation and deadlines propagate.
func (c *Client) Submit(k *qpi.Circuit, device string, opts SubmitOptions) (*qrm.Ticket, error) {
	return c.SubmitCtx(context.Background(), k, device, opts)
}

// Run is the synchronous convenience wrapper detached from any context.
//
// Deprecated: use RunCtx.
func (c *Client) Run(k *qpi.Circuit, device string, opts SubmitOptions) (*qpi.Result, error) {
	return c.RunCtx(context.Background(), k, device, opts)
}

// BatchResult pairs one batch entry's outcome with its error; exactly one
// of the fields is set.
type BatchResult struct {
	Result *qpi.Result
	Err    error
}

// batchCompileWorkers bounds concurrent JIT compilations in a batch.
func batchCompileWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 2 {
		n = 2
	}
	return n
}

// SubmitBatch compiles the kernels concurrently (bounded by the CPU count)
// and enqueues one ticket each under ctx. The returned slices are parallel
// to kernels: entries that failed to compile or enqueue have a nil ticket
// and a non-nil error. Successfully submitted entries proceed even if
// siblings failed — batch failure is per-item, not all-or-nothing.
func (c *Client) SubmitBatch(ctx context.Context, kernels []*qpi.Circuit, device string, opts SubmitOptions) ([]*qrm.Ticket, []error) {
	tickets := make([]*qrm.Ticket, len(kernels))
	errs := make([]error, len(kernels))
	sem := make(chan struct{}, batchCompileWorkers())
	var wg sync.WaitGroup
	for i, k := range kernels {
		wg.Add(1)
		go func(i int, k *qpi.Circuit) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				errs[i] = fmt.Errorf("client: batch: %w", ctx.Err())
				return
			}
			defer func() { <-sem }()
			tickets[i], errs[i] = c.SubmitCtx(ctx, k, device, opts)
		}(i, k)
	}
	// Every worker exits on ctx.Done before acquiring the semaphore, and
	// SubmitCtx is itself ctx-bounded, so this Wait is bounded by
	// cancellation and cannot be selected on.
	wg.Wait() //lint:mqssvet disable=ctxcancel workers exit on ctx.Done, so the Wait is ctx-bounded
	return tickets, errs
}

// RunBatch submits N kernels as a batch and waits for all of them. The
// result slice is parallel to kernels; sibling failures and cancellations
// surface per item. Compared with N sequential RunCtx calls, compilation
// overlaps across kernels and the device queue never drains between jobs.
func (c *Client) RunBatch(ctx context.Context, kernels []*qpi.Circuit, device string, opts SubmitOptions) ([]BatchResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("client: batch: %w", err)
	}
	tickets, errs := c.SubmitBatch(ctx, kernels, device, opts)
	out := make([]BatchResult, len(kernels))
	for i, tk := range tickets {
		if tk == nil {
			out[i].Err = errs[i]
			continue
		}
		res, err := tk.Wait(ctx)
		if err != nil {
			out[i].Err = err
			continue
		}
		out[i].Result = resultFromQDMI(res)
	}
	return out, nil
}

// NativeAdapter is the MQSS QPI Adapter: a compiled, in-process qpi.Backend
// bound to one device through the client — the paper's low-overhead path.
type NativeAdapter struct {
	Client *Client
	Target string
}

// Name implements qpi.Backend.
func (a *NativeAdapter) Name() string { return "qpi-native/" + a.Target }

// Submit implements qpi.Backend: it threads the execution config into the
// client and wraps the scheduler ticket as a qpi.Handle. A config deadline
// derives a deadline context whose expiry cancels the job itself.
func (a *NativeAdapter) Submit(ctx context.Context, k *qpi.Circuit, cfg qpi.ExecConfig) (qpi.Handle, error) {
	opts := SubmitOptions{
		Shots:       cfg.Shots,
		ShotWorkers: cfg.ShotWorkers,
		Priority:    cfg.Priority,
		Tag:         cfg.Tag,
		Pool:        cfg.Pool,
		BypassCache: cfg.BypassCache,
		MeasLevel:   cfg.MeasLevel,
		MeasReturn:  cfg.MeasReturn,
		TraceID:     cfg.TraceID,
	}
	var cancel context.CancelFunc
	if !cfg.Deadline.IsZero() {
		ctx, cancel = context.WithDeadline(ctx, cfg.Deadline)
	}
	tk, err := a.Client.SubmitCtx(ctx, k, a.Target, opts)
	if err != nil {
		if cancel != nil {
			cancel()
		}
		return nil, err
	}
	if cancel != nil {
		// Release the deadline timer once the ticket resolves.
		go func() {
			<-tk.DoneCh()
			cancel()
		}()
	}
	return &ticketHandle{tk: tk}, nil
}

// Execute runs a kernel synchronously, detached from any context.
//
// Deprecated: use qpi.Run(ctx, adapter, kernel, opts...) instead.
func (a *NativeAdapter) Execute(k *qpi.Circuit, shots int) (*qpi.Result, error) {
	return a.Client.RunCtx(context.Background(), k, a.Target, SubmitOptions{Shots: shots})
}

// ticketHandle adapts a QRM ticket to the qpi.Handle future interface.
type ticketHandle struct {
	tk *qrm.Ticket
}

// ID implements qpi.Handle.
func (h *ticketHandle) ID() string { return fmt.Sprintf("qrm-%d", h.tk.ID()) }

// Status implements qpi.Handle.
func (h *ticketHandle) Status() qpi.ExecStatus {
	switch h.tk.Status() {
	case qdmi.JobQueued:
		return qpi.ExecQueued
	case qdmi.JobRunning:
		return qpi.ExecRunning
	case qdmi.JobDone:
		return qpi.ExecDone
	case qdmi.JobCancelled:
		return qpi.ExecCancelled
	default:
		return qpi.ExecFailed
	}
}

// Cancel implements qpi.Handle.
func (h *ticketHandle) Cancel() { h.tk.Cancel() }

// Timeline implements qpi.Handle: the job's trace as recorded through the
// client, scheduler, and device.
func (h *ticketHandle) Timeline() *telemetry.Timeline { return h.tk.Timeline() }

// Wait implements qpi.Handle.
func (h *ticketHandle) Wait(ctx context.Context) (*qpi.Result, error) {
	res, err := h.tk.Wait(ctx)
	if err != nil {
		return nil, err
	}
	return resultFromQDMI(res), nil
}
