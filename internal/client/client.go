// Package client implements the MQSS Client of Fig. 2: the orchestration
// layer MQSS Adapters submit jobs through. It routes kernels to the JIT
// compiler and the QRM scheduler for local devices, and over a REST-like
// TCP protocol for remote submission. Three adapters are provided: the
// native compiled QPI adapter (the paper's low-latency C API analogue), an
// interpreted adapter that parses a textual program per call (the
// scripting-runtime stand-in for the Section 5.1 overhead comparison), and
// the remote adapter.
package client

import (
	"fmt"
	"sync"

	"mqsspulse/internal/compiler"
	"mqsspulse/internal/qdmi"
	"mqsspulse/internal/qpi"
	"mqsspulse/internal/qrm"
)

// Client routes finished kernels through compile → schedule → execute.
type Client struct {
	session *qdmi.Session
	qrm     *qrm.Scheduler

	mu sync.Mutex
	// loweringCache memoizes compiled payloads keyed by (device, kernel
	// fingerprint); ablation benchmarks toggle it.
	loweringCache map[string][]byte
	CacheEnabled  bool
	cacheHits     int64
}

// New builds a client over a QDMI session with its own QRM scheduler.
func New(session *qdmi.Session) *Client {
	return &Client{
		session:       session,
		qrm:           qrm.New(session),
		loweringCache: map[string][]byte{},
		CacheEnabled:  true,
	}
}

// QRM exposes the scheduler (for maintenance-hook installation).
func (c *Client) QRM() *qrm.Scheduler { return c.qrm }

// Devices lists the reachable device names.
func (c *Client) Devices() ([]string, error) { return c.session.Devices() }

// Device resolves a device for direct QDMI queries.
func (c *Client) Device(name string) (qdmi.Device, error) { return c.session.Device(name) }

// CacheHits reports lowering-cache hits (ablation metric).
func (c *Client) CacheHits() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cacheHits
}

// Close shuts down the scheduler.
func (c *Client) Close() { c.qrm.Close() }

// fingerprint builds a cache key from the kernel structure.
func fingerprint(k *qpi.Circuit, device string) string {
	key := fmt.Sprintf("%s/%s/%d/%d/%d", device, k.Name, k.Qubits, k.Classical, len(k.Ops))
	for _, op := range k.Ops {
		key += fmt.Sprintf("|%d:%s:%v:%v:%s:%s:%g:%g:%d:%d:%d",
			op.Kind, op.Gate, op.Qubits, op.Params, op.WaveformName, op.Port,
			op.FrequencyHz, op.PhaseRad, op.DelaySamples, op.Qubit, op.Cbit)
	}
	return key
}

// Compile lowers a kernel for a device, using the lowering cache when
// enabled.
func (c *Client) Compile(k *qpi.Circuit, device string) ([]byte, qdmi.ProgramFormat, error) {
	dev, err := c.session.Device(device)
	if err != nil {
		return nil, "", err
	}
	key := fingerprint(k, device)
	if c.CacheEnabled {
		c.mu.Lock()
		if payload, ok := c.loweringCache[key]; ok {
			c.cacheHits++
			c.mu.Unlock()
			// Format is derivable from the payload profile; recompute cheaply.
			format := qdmi.FormatQIRBase
			if containsPulse(payload) {
				format = qdmi.FormatQIRPulse
			}
			return payload, format, nil
		}
		c.mu.Unlock()
	}
	res, err := compiler.Compile(k, dev)
	if err != nil {
		return nil, "", err
	}
	if c.CacheEnabled {
		c.mu.Lock()
		c.loweringCache[key] = res.Payload
		c.mu.Unlock()
	}
	return res.Payload, compiler.FormatFor(res.QIR), nil
}

func containsPulse(payload []byte) bool {
	needle := []byte(`"qir_profiles"="pulse"`)
	for i := 0; i+len(needle) <= len(payload); i++ {
		if string(payload[i:i+len(needle)]) == string(needle) {
			return true
		}
	}
	return false
}

// SubmitOptions tunes a submission.
type SubmitOptions struct {
	Shots    int
	Priority int
}

// Submit compiles and enqueues a kernel, returning the QRM ticket.
func (c *Client) Submit(k *qpi.Circuit, device string, opts SubmitOptions) (*qrm.Ticket, error) {
	if err := k.Err(); err != nil {
		return nil, err
	}
	if !k.Finished() {
		return nil, fmt.Errorf("client: kernel %q not finished", k.Name)
	}
	if opts.Shots <= 0 {
		opts.Shots = 1024
	}
	payload, format, err := c.Compile(k, device)
	if err != nil {
		return nil, err
	}
	return c.qrm.Submit(qrm.Request{
		Device: device, Payload: payload, Format: format,
		Shots: opts.Shots, Priority: opts.Priority,
	})
}

// Run is the synchronous convenience wrapper: compile, schedule, wait.
func (c *Client) Run(k *qpi.Circuit, device string, opts SubmitOptions) (*qpi.Result, error) {
	tk, err := c.Submit(k, device, opts)
	if err != nil {
		return nil, err
	}
	res, err := tk.Wait()
	if err != nil {
		return nil, err
	}
	return &qpi.Result{Counts: res.Counts, Shots: res.Shots, DurationSeconds: res.DurationSeconds}, nil
}

// NativeAdapter is the MQSS QPI Adapter: a compiled, in-process qpi.Backend
// bound to one device through the client — the paper's low-overhead path.
type NativeAdapter struct {
	Client *Client
	Target string
}

// Name implements qpi.Backend.
func (a *NativeAdapter) Name() string { return "qpi-native/" + a.Target }

// Execute implements qpi.Backend.
func (a *NativeAdapter) Execute(k *qpi.Circuit, shots int) (*qpi.Result, error) {
	return a.Client.Run(k, a.Target, SubmitOptions{Shots: shots})
}
