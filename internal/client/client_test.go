package client

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"

	"mqsspulse/internal/calib"
	"mqsspulse/internal/devices"
	"mqsspulse/internal/qdmi"
	"mqsspulse/internal/qpi"
	"mqsspulse/internal/testutil"
)

func testStack(t *testing.T) (*Client, *devices.SimDevice) {
	t.Helper()
	testutil.AssertNoLeaks(t)
	dev, err := devices.Superconducting("hpcqc-sc", 2, 31)
	if err != nil {
		t.Fatal(err)
	}
	drv := qdmi.NewDriver()
	if err := drv.RegisterDevice(dev); err != nil {
		t.Fatal(err)
	}
	c := New(drv.OpenSession())
	t.Cleanup(c.Close)
	return c, dev
}

func bell(t *testing.T) *qpi.Circuit {
	t.Helper()
	c := qpi.NewCircuit("bell", 2, 2).H(0).CX(0, 1).Measure(0, 0).Measure(1, 1)
	if err := c.End(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClientRunBell(t *testing.T) {
	c, _ := testStack(t)
	res, err := c.Run(bell(t), "hpcqc-sc", SubmitOptions{Shots: 4000})
	if err != nil {
		t.Fatal(err)
	}
	p00 := res.Probability(0b00)
	p11 := res.Probability(0b11)
	if math.Abs(p00-0.5) > 0.07 || math.Abs(p11-0.5) > 0.07 {
		t.Fatalf("Bell through client: p00=%g p11=%g", p00, p11)
	}
	if res.DurationSeconds <= 0 {
		t.Fatal("schedule duration missing")
	}
}

func TestClientValidation(t *testing.T) {
	c, _ := testStack(t)
	unfinished := qpi.NewCircuit("u", 1, 0).X(0)
	if _, err := c.Submit(unfinished, "hpcqc-sc", SubmitOptions{Shots: 10}); err == nil {
		t.Fatal("unfinished kernel accepted")
	}
	bad := qpi.NewCircuit("b", 1, 0).X(9)
	_ = bad.End()
	if _, err := c.Submit(bad, "hpcqc-sc", SubmitOptions{Shots: 10}); err == nil {
		t.Fatal("broken kernel accepted")
	}
	good := bell(t)
	if _, err := c.Submit(good, "ghost", SubmitOptions{Shots: 10}); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestClientDevices(t *testing.T) {
	c, _ := testStack(t)
	names, err := c.Devices()
	if err != nil || len(names) != 1 || names[0] != "hpcqc-sc" {
		t.Fatalf("devices = %v (%v)", names, err)
	}
	if _, err := c.Device("hpcqc-sc"); err != nil {
		t.Fatal(err)
	}
}

func TestLoweringCache(t *testing.T) {
	c, _ := testStack(t)
	k := bell(t)
	if _, _, err := c.Compile(k, "hpcqc-sc"); err != nil {
		t.Fatal(err)
	}
	if c.CacheHits() != 0 {
		t.Fatal("cold compile counted as hit")
	}
	p1, f1, err := c.Compile(k, "hpcqc-sc")
	if err != nil {
		t.Fatal(err)
	}
	if c.CacheHits() != 1 {
		t.Fatalf("cache hits = %d", c.CacheHits())
	}
	if f1 != qdmi.FormatQIRPulse || len(p1) == 0 {
		t.Fatalf("cached result wrong: %s %d bytes", f1, len(p1))
	}
	// Disabling the cache recompiles.
	c.CacheEnabled = false
	if _, _, err := c.Compile(k, "hpcqc-sc"); err != nil {
		t.Fatal(err)
	}
	if c.CacheHits() != 1 {
		t.Fatal("disabled cache still hit")
	}
}

func TestNativeAdapter(t *testing.T) {
	c, _ := testStack(t)
	backend := &NativeAdapter{Client: c, Target: "hpcqc-sc"}
	if !strings.Contains(backend.Name(), "hpcqc-sc") {
		t.Fatal("adapter name missing target")
	}
	res, err := qpi.Execute(backend, bell(t), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shots != 1000 {
		t.Fatalf("shots = %d", res.Shots)
	}
}

const bellProgram = `# Bell pair through the interpreted adapter
circuit bell 2 2
h 0
cx 0 1
measure 0 0
measure 1 1
`

func TestInterpretedAdapterParses(t *testing.T) {
	c, _ := testStack(t)
	a := &InterpretedAdapter{Client: c, Target: "hpcqc-sc"}
	k, err := a.ParseProgram(bellProgram)
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "bell" || k.CountKind(qpi.OpGate) != 2 || k.CountKind(qpi.OpMeasure) != 2 {
		t.Fatalf("parsed kernel wrong: %+v", k)
	}
	res, err := a.Execute(bellProgram, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Probability(0b00)-0.5) > 0.08 {
		t.Fatalf("interpreted Bell p00=%g", res.Probability(0b00))
	}
}

func TestInterpretedAdapterPulseProgram(t *testing.T) {
	c, dev := testStack(t)
	a := &InterpretedAdapter{Client: c, Target: "hpcqc-sc"}
	amp := dev.CalibratedPiAmplitude(0)
	var sb strings.Builder
	sb.WriteString("circuit pulsed 1 1\nwaveform w1")
	for i := 0; i < 32; i++ {
		x := float64(i) - 15.5
		v := amp * math.Exp(-x*x/72)
		fmt.Fprintf(&sb, " %.9f,0", v)
	}
	sb.WriteString("\nplay q0-drive w1\nframechange q0-drive 4.9e9 0.1\nmeasure 0 0\n")
	k, err := a.ParseProgram(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if !k.HasPulseOps() {
		t.Fatal("pulse ops lost in interpretation")
	}
}

func TestInterpretedAdapterRejections(t *testing.T) {
	c, _ := testStack(t)
	a := &InterpretedAdapter{Client: c, Target: "hpcqc-sc"}
	bads := []string{
		"",
		"x 0",                         // statement before header
		"circuit c 1 1\nwarp 0",       // unknown statement
		"circuit c 1 1\nx banana",     // bad int
		"circuit c 1 1\nrx 0",         // missing param
		"circuit c 1 1\nwaveform w x", // bad sample
		"circuit c x y",               // bad header
		"circuit c 1 1\nplay p",       // missing waveform
	}
	for i, src := range bads {
		if _, err := a.ParseProgram(src); err == nil {
			t.Errorf("bad program %d accepted", i)
		}
	}
}

func TestInterpretedParseCache(t *testing.T) {
	c, _ := testStack(t)
	a := &InterpretedAdapter{Client: c, Target: "hpcqc-sc", ParseCacheEnabled: true}
	k1, err := a.ParseProgram(bellProgram)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := a.ParseProgram(bellProgram)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("parse cache did not reuse the kernel")
	}
}

func TestRemoteRoundtrip(t *testing.T) {
	c, _ := testStack(t)
	srv, err := NewServer(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Compile locally, submit remotely — the Fig. 2 remote path.
	payload, format, err := c.Compile(bell(t), "hpcqc-sc")
	if err != nil {
		t.Fatal(err)
	}
	remote, err := NewRemoteAdapter(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	res, err := remote.SubmitPayload("hpcqc-sc", payload, format, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shots != 2000 {
		t.Fatalf("shots = %d", res.Shots)
	}
	if math.Abs(res.Probability(0b00)-0.5) > 0.08 {
		t.Fatalf("remote Bell p00=%g", res.Probability(0b00))
	}
	// Error path: unknown device.
	if _, err := remote.SubmitPayload("ghost", payload, format, 10); err == nil {
		t.Fatal("remote accepted unknown device")
	}
	// Second submission reuses the connection.
	if _, err := remote.SubmitPayload("hpcqc-sc", payload, format, 100); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteAdapterClosed(t *testing.T) {
	c, _ := testStack(t)
	srv, err := NewServer(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	remote, err := NewRemoteAdapter(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	remote.Close()
	if _, err := remote.SubmitPayload("hpcqc-sc", []byte("x"), qdmi.FormatQIRBase, 10); err == nil {
		t.Fatal("closed adapter accepted submission")
	}
}

func TestQRMCalibrationMaintenanceIntegration(t *testing.T) {
	// The paper's resource-aware calibration planning: the QRM runs due
	// calibration routines before dispatching user jobs. Drift the device,
	// install a calibration maintenance hook, and verify a user job
	// triggers recalibration.
	c, dev := testStack(t)
	pol, err := calib.PolicyFor(dev)
	if err != nil {
		t.Fatal(err)
	}
	pol.Shots = 400
	sched := calib.NewScheduler(dev, pol)
	c.QRM().SetMaintenanceHook(func(d qdmi.Device) error {
		_, err := sched.Tick(context.Background())
		return err
	})
	// Push the device past its Ramsey cadence.
	dev.AdvanceTime(pol.RamseyEverySeconds + 60)
	before := len(sched.Events)
	if _, err := c.Run(bell(t), "hpcqc-sc", SubmitOptions{Shots: 200}); err != nil {
		t.Fatal(err)
	}
	if len(sched.Events) <= before {
		t.Fatal("user job did not trigger due calibration")
	}
	// Maintenance is recorded in the QRM stats.
	if c.QRM().Stats().MaintenanceRuns == 0 {
		t.Fatal("maintenance runs not counted")
	}
}
