package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"mqsspulse/internal/ptemplate"
	"mqsspulse/internal/qdmi"
	"mqsspulse/internal/qpi"
	"mqsspulse/internal/qrm"
	"mqsspulse/internal/readout"
	"mqsspulse/internal/telemetry"
)

// The remote protocol is one JSON object per line in each direction —
// the REST-like submission path of Fig. 2, reduced to its essentials.
// Deadlines cross the machine boundary: the adapter ships the remaining
// context budget as timeout_ms and the server bounds the job with it.

// remoteRequest is the wire form of a job submission.
type remoteRequest struct {
	// Op selects the request kind: "" (or "submit") is a legacy payload
	// submission, "register_template" ships a parametric payload once per
	// connection, "submit_bound" references it by fingerprint with a
	// small per-point bindings frame, and "telemetry" fetches the server's
	// fleet metrics snapshot.
	Op string `json:"op,omitempty"`
	// Template is the Compiled.Encode frame for op "register_template".
	Template json.RawMessage `json:"template,omitempty"`
	// TemplateID names a previously registered template (its fingerprint)
	// for op "submit_bound".
	TemplateID string `json:"template_id,omitempty"`
	// Bindings carries the per-point parameter values for op "submit_bound".
	Bindings map[string]float64 `json:"bindings,omitempty"`

	Device string `json:"device"`
	// Pool targets a named server-side device pool instead of Device.
	Pool     string `json:"pool,omitempty"`
	Format   string `json:"format"`
	Payload  string `json:"payload"`
	Shots    int    `json:"shots"`
	Priority int    `json:"priority,omitempty"`
	Tag      string `json:"tag,omitempty"`
	// ShotWorkers asks the executing device to spread the job's shots
	// across that many workers; 0 (legacy clients) keeps the device
	// default.
	ShotWorkers int `json:"shot_workers,omitempty"`
	// TimeoutMs bounds the job server-side; 0 means no client deadline.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// MeasLevel/MeasReturn select the acquisition data shape
	// ("discriminated"/"kerneled"/"raw", "single"/"avg"); empty means
	// discriminated counts (legacy clients).
	MeasLevel  string `json:"meas_level,omitempty"`
	MeasReturn string `json:"meas_return,omitempty"`
	// CalibrationEpoch is the calibration epoch the payload was compiled
	// against; the server rejects the job with a stale_calibration error
	// if the target has recalibrated past it. Zero (legacy clients)
	// disables the check.
	CalibrationEpoch int64 `json:"calibration_epoch,omitempty"`
	// TraceID propagates the submission's telemetry trace across the wire:
	// the server records its lifecycle spans under this ID and returns them
	// in the response, so the client-side timeline covers both machines.
	TraceID string `json:"trace_id,omitempty"`
}

// remoteResponse is the wire form of a completed job.
type remoteResponse struct {
	Error string `json:"error,omitempty"`
	// ErrorKind carries the machine-readable class of Error across the
	// wire ("overloaded", "no_such_target"), so the adapter can rebuild
	// the typed sentinels and callers can back off with errors.Is.
	ErrorKind       string            `json:"error_kind,omitempty"`
	Counts          map[string]int    `json:"counts,omitempty"`
	Shots           int               `json:"shots"`
	DurationSeconds float64           `json:"duration_seconds"`
	DeviceInfo      map[string]string `json:"device_info,omitempty"`
	// MeasLevel echoes the level of the returned data.
	MeasLevel string `json:"meas_level,omitempty"`
	// Bits lists the captured classical-bit positions (IQ column order).
	Bits []int `json:"bits,omitempty"`
	// IQ is [shot][capture] → [i, q].
	IQ [][][2]float64 `json:"iq,omitempty"`
	// Raw is [shot][capture][sample] → [i, q].
	Raw [][][][2]float64 `json:"raw,omitempty"`
	// Spans carries the server-side lifecycle spans of the submission
	// (queue-wait, dispatch, bind, device-execute, ...) back to the client,
	// which imports them under its own dispatch span so one timeline covers
	// the whole round trip.
	Spans []telemetry.SpanWire `json:"spans,omitempty"`
	// Telemetry is the server's fleet metrics snapshot (op "telemetry").
	Telemetry json.RawMessage `json:"telemetry,omitempty"`
}

// ServerOption tunes a Server.
type ServerOption func(*serverConfig)

type serverConfig struct {
	baseCtx     context.Context
	idleTimeout time.Duration
	maxJobTime  time.Duration
}

// WithServerBaseContext bounds every job the server runs: cancelling ctx
// cancels all in-flight remote jobs (on top of Close, which always does).
func WithServerBaseContext(ctx context.Context) ServerOption {
	return func(c *serverConfig) { c.baseCtx = ctx }
}

// WithServerIdleTimeout drops connections that send no request for d.
func WithServerIdleTimeout(d time.Duration) ServerOption {
	return func(c *serverConfig) { c.idleTimeout = d }
}

// WithServerMaxJobTime caps each remote job's wall-clock time regardless
// of the client-requested timeout.
func WithServerMaxJobTime(d time.Duration) ServerOption {
	return func(c *serverConfig) { c.maxJobTime = d }
}

// Server exposes a client's devices over TCP for remote submission.
type Server struct {
	client *Client
	ln     net.Listener
	cfg    serverConfig
	ctx    context.Context // cancelled on Close; parent of every job ctx
	cancel context.CancelFunc
	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
}

// NewServer starts listening on addr ("127.0.0.1:0" for an ephemeral
// port). Options tune idle/read deadlines and job time bounds.
func NewServer(c *Client, addr string, opts ...ServerOption) (*Server, error) {
	//lint:mqssvet disable=ctxflow the default base context is overridable via WithServerBaseContext; Background is the documented fallback
	cfg := serverConfig{baseCtx: context.Background()}
	for _, o := range opts {
		o(&cfg)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(cfg.baseCtx)
	s := &Server{client: c, ln: ln, cfg: cfg, ctx: ctx, cancel: cancel}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener, cancels in-flight jobs, and waits for
// connections to drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.ln.Close()
	s.cancel()
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
		}()
	}
}

func (s *Server) serve(conn net.Conn) {
	defer conn.Close()
	// Unblock reads when the server shuts down mid-connection.
	stop := context.AfterFunc(s.ctx, func() { _ = conn.SetDeadline(time.Now()) })
	defer stop()
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<24)
	enc := json.NewEncoder(conn)
	// Registered templates are scoped to the connection: the registry dies
	// with it, so a reconnecting adapter must re-register (and a server
	// restart can never serve stale parametric payloads).
	templates := map[string]*ptemplate.Compiled{}
	for {
		if s.cfg.idleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.cfg.idleTimeout))
		}
		if !scanner.Scan() {
			return
		}
		var req remoteRequest
		if err := json.Unmarshal(scanner.Bytes(), &req); err != nil {
			_ = enc.Encode(remoteResponse{Error: "malformed request: " + err.Error()})
			continue
		}
		resp := s.handle(&req, templates)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// jobContext derives the context bounding one remote job from the server
// base context, the server-side cap, and the client-requested timeout.
func (s *Server) jobContext(req *remoteRequest) (context.Context, context.CancelFunc) {
	timeout := time.Duration(0)
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	if s.cfg.maxJobTime > 0 && (timeout == 0 || s.cfg.maxJobTime < timeout) {
		timeout = s.cfg.maxJobTime
	}
	if timeout > 0 {
		return context.WithTimeout(s.ctx, timeout)
	}
	return context.WithCancel(s.ctx)
}

func (s *Server) handle(req *remoteRequest, templates map[string]*ptemplate.Compiled) remoteResponse {
	switch req.Op {
	case "", "submit", "submit_bound":
		return s.handleSubmit(req, templates)
	case "register_template":
		tpl, err := ptemplate.Decode(req.Template)
		if err != nil {
			return remoteResponse{Error: "bad template frame: " + err.Error()}
		}
		templates[tpl.Fingerprint] = tpl
		return remoteResponse{}
	case "telemetry":
		snap, err := json.Marshal(s.client.Telemetry())
		if err != nil {
			return remoteResponse{Error: "telemetry snapshot: " + err.Error()}
		}
		return remoteResponse{Telemetry: snap}
	default:
		return remoteResponse{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

func (s *Server) handleSubmit(req *remoteRequest, templates map[string]*ptemplate.Compiled) remoteResponse {
	ctx, cancel := s.jobContext(req)
	defer cancel()
	qreq := qrm.Request{}
	if req.Op == "submit_bound" {
		tpl, ok := templates[req.TemplateID]
		if !ok {
			return remoteResponse{
				Error:     fmt.Sprintf("template %q not registered on this connection", req.TemplateID),
				ErrorKind: "unknown_template",
			}
		}
		qreq.Template = tpl
		qreq.Bindings = req.Bindings
	} else {
		format := qdmi.ProgramFormat(req.Format)
		if format == "" {
			// Legacy clients may omit the format; sniff the payload profile.
			format = qdmi.FormatQIRBase
			if containsPulse([]byte(req.Payload)) {
				format = qdmi.FormatQIRPulse
			}
		}
		qreq.Payload = []byte(req.Payload)
		qreq.Format = format
	}
	level, err := readout.ParseMeasLevel(req.MeasLevel)
	if err != nil {
		return remoteResponse{Error: err.Error()}
	}
	ret, err := readout.ParseMeasReturn(req.MeasReturn)
	if err != nil {
		return remoteResponse{Error: err.Error()}
	}
	device := req.Device
	compiledFor := ""
	if req.Pool != "" {
		// Pool targeting wins, mirroring Client.SubmitCtx — including the
		// compile-target convention: a pool payload's epoch refers to the
		// deterministic representative member.
		device = ""
		if members, merr := s.client.qrm.PoolMembers(req.Pool); merr == nil {
			compiledFor = members[0]
		}
	}
	qreq.Device = device
	qreq.Pool = req.Pool
	qreq.Shots = req.Shots
	qreq.ShotWorkers = req.ShotWorkers
	qreq.Priority = req.Priority
	qreq.Tag = req.Tag
	qreq.MeasLevel = level
	qreq.MeasReturn = ret
	qreq.CalibrationEpoch = req.CalibrationEpoch
	qreq.CompiledFor = compiledFor
	// The server-side timeline shares the caller's trace ID and feeds the
	// server's own fleet registry; its spans ship back with the response so
	// the client-side timeline covers both machines.
	tl := s.client.NewTimeline(req.TraceID)
	qreq.Timeline = tl
	tk, err := s.client.qrm.SubmitCtx(ctx, qreq)
	if err != nil {
		return remoteResponse{Error: err.Error(), ErrorKind: errorKind(err), Spans: telemetry.ToWire(tl.Spans())}
	}
	res, err := tk.Wait(ctx)
	if err != nil {
		return remoteResponse{Error: err.Error(), ErrorKind: errorKind(err), Spans: telemetry.ToWire(tl.Spans())}
	}
	counts := make(map[string]int, len(res.Counts))
	for mask, n := range res.Counts {
		counts[fmt.Sprintf("%d", mask)] = n
	}
	resp := remoteResponse{
		Counts: counts, Shots: res.Shots, DurationSeconds: res.DurationSeconds,
		Spans: telemetry.ToWire(tl.Spans()),
	}
	if res.MeasLevel != readout.LevelDiscriminated {
		resp.MeasLevel = res.MeasLevel.String()
		resp.Bits = res.Bits
		resp.IQ = make([][][2]float64, len(res.IQ))
		for k, row := range res.IQ {
			pts := make([][2]float64, len(row))
			for i, p := range row {
				pts[i] = [2]float64{p.I, p.Q}
			}
			resp.IQ[k] = pts
		}
		if res.MeasLevel == readout.LevelRaw {
			resp.Raw = make([][][][2]float64, len(res.Raw))
			for k, shot := range res.Raw {
				traces := make([][][2]float64, len(shot))
				for i, tr := range shot {
					enc := make([][2]float64, len(tr))
					for j, v := range tr {
						enc[j] = [2]float64{real(v), imag(v)}
					}
					traces[i] = enc
				}
				resp.Raw[k] = traces
			}
		}
	}
	return resp
}

// errorKind classifies a scheduler error for the wire, so typed sentinels
// survive the machine boundary.
func errorKind(err error) string {
	switch {
	case errors.Is(err, qrm.ErrOverloaded):
		return "overloaded"
	case errors.Is(err, qrm.ErrNoSuchTarget):
		return "no_such_target"
	case errors.Is(err, qrm.ErrStaleCalibration):
		return "stale_calibration"
	case errors.Is(err, ptemplate.ErrBadParam):
		return "bad_param"
	case errors.Is(err, qrm.ErrCancelled):
		return "cancelled"
	case errors.Is(err, qdmi.ErrNotSupported):
		return "not_supported"
	case errors.Is(err, qdmi.ErrInvalidArgument):
		return "invalid_argument"
	case errors.Is(err, qdmi.ErrFatal):
		return "fatal"
	default:
		return ""
	}
}

// errorFromWire rebuilds a typed submission error from the wire fields.
func errorFromWire(kind, msg string) error {
	switch kind {
	case "overloaded":
		return fmt.Errorf("client: remote: %w: %s", qrm.ErrOverloaded, msg)
	case "no_such_target":
		return fmt.Errorf("client: remote: %w: %s", qrm.ErrNoSuchTarget, msg)
	case "stale_calibration":
		return fmt.Errorf("client: remote: %w: %s", qrm.ErrStaleCalibration, msg)
	case "bad_param":
		return fmt.Errorf("client: remote: %w: %s", ptemplate.ErrBadParam, msg)
	case "cancelled":
		return fmt.Errorf("client: remote: %w: %s", qrm.ErrCancelled, msg)
	case "not_supported":
		return fmt.Errorf("client: remote: %w: %s", qdmi.ErrNotSupported, msg)
	case "invalid_argument":
		return fmt.Errorf("client: remote: %w: %s", qdmi.ErrInvalidArgument, msg)
	case "fatal":
		return fmt.Errorf("client: remote: %w: %s", qdmi.ErrFatal, msg)
	case "unknown_template":
		return fmt.Errorf("client: remote: template not registered: %s", msg)
	default:
		return fmt.Errorf("client: remote: %s", msg)
	}
}

// RemoteOption tunes a RemoteAdapter.
type RemoteOption func(*remoteConfig)

type remoteConfig struct {
	dialTimeout time.Duration
}

// WithDialTimeout bounds connection establishment.
func WithDialTimeout(d time.Duration) RemoteOption {
	return func(c *remoteConfig) { c.dialTimeout = d }
}

// RemoteAdapter submits compiled payloads to a remote MQSS client over TCP.
type RemoteAdapter struct {
	addr string

	mu   sync.Mutex
	conn net.Conn
	rd   *bufio.Reader
	// registered tracks template fingerprints already shipped on this
	// connection, so a sweep sends the parametric payload exactly once.
	registered map[string]bool
}

// NewRemoteAdapter dials the remote server, detached from any context.
func NewRemoteAdapter(addr string, opts ...RemoteOption) (*RemoteAdapter, error) {
	//lint:mqssvet disable=ctxflow convenience constructor; the Ctx variant is the context-carrying path
	return NewRemoteAdapterCtx(context.Background(), addr, opts...)
}

// NewRemoteAdapterCtx dials the remote server under ctx: cancellation or a
// ctx deadline aborts the dial.
func NewRemoteAdapterCtx(ctx context.Context, addr string, opts ...RemoteOption) (*RemoteAdapter, error) {
	cfg := remoteConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	d := net.Dialer{Timeout: cfg.dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return &RemoteAdapter{addr: addr, conn: conn, rd: bufio.NewReaderSize(conn, 1<<20)}, nil
}

// Close shuts the connection.
func (r *RemoteAdapter) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closeLocked()
}

func (r *RemoteAdapter) closeLocked() {
	if r.conn != nil {
		r.conn.Close()
		r.conn = nil
		r.rd = nil
		// Server-side template registries are per-connection; forget what
		// this one shipped so a future adapter re-registers from scratch.
		r.registered = nil
	}
}

// SubmitPayloadCtx sends a precompiled exchange-format payload and waits
// for the result under ctx. The remaining context budget ships to the
// server as the job timeout, and a cancelled ctx interrupts a blocked read
// immediately (the connection is then closed: the protocol has no way to
// resynchronize a half-read response).
func (r *RemoteAdapter) SubmitPayloadCtx(ctx context.Context, device string, payload []byte, format qdmi.ProgramFormat, opts SubmitOptions) (*qpi.Result, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	req := remoteRequest{
		Device: device, Pool: opts.Pool, Format: string(format), Payload: string(payload),
		Shots: opts.Shots, Priority: opts.Priority, Tag: opts.Tag,
		ShotWorkers: opts.ShotWorkers, CalibrationEpoch: opts.CalibrationEpoch,
	}
	if opts.MeasLevel != readout.LevelDiscriminated {
		req.MeasLevel = opts.MeasLevel.String()
		req.MeasReturn = opts.MeasReturn.String()
	}
	resp, err := r.exchangeTraced(ctx, &req, opts)
	if err != nil {
		return nil, err
	}
	return resultFromWire(resp, opts)
}

// exchangeTraced is exchangeLocked plus telemetry (r.mu must be held): the
// whole wire round trip is recorded as a client-side dispatch span on
// opts.Timeline, the trace ID ships in the request, and the server-side
// spans returned in the response are imported under the dispatch span —
// marked Remote so their durations never double-count into local
// histograms. A nil timeline degrades to a plain exchange.
func (r *RemoteAdapter) exchangeTraced(ctx context.Context, req *remoteRequest, opts SubmitOptions) (*remoteResponse, error) {
	tl := opts.Timeline
	req.TraceID = opts.TraceID
	if tl != nil {
		req.TraceID = tl.TraceID()
	}
	ds := tl.StartSpan(telemetry.StageDispatch, "remote:"+r.addr, 0)
	resp, err := r.exchangeLocked(ctx, req)
	ds.End()
	if err != nil {
		return nil, err
	}
	tl.Import(telemetry.FromWire(resp.Spans), ds.ID())
	return resp, nil
}

// Telemetry fetches the remote server's fleet metrics snapshot — every
// counter and latency histogram the server-side client accumulated.
func (r *RemoteAdapter) Telemetry(ctx context.Context) (telemetry.Snapshot, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	req := remoteRequest{Op: "telemetry"}
	resp, err := r.exchangeLocked(ctx, &req)
	if err != nil {
		return telemetry.Snapshot{}, err
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(resp.Telemetry, &snap); err != nil {
		return telemetry.Snapshot{}, fmt.Errorf("client: remote telemetry frame: %w", err)
	}
	return snap, nil
}

// RegisterTemplate ships a compiled parametric template to the server,
// where it lives for the rest of the connection. SubmitBoundCtx registers
// lazily, so calling this explicitly is only an optimization (front-loading
// the one large frame before a latency-sensitive sweep).
func (r *RemoteAdapter) RegisterTemplate(ctx context.Context, compiled *ptemplate.Compiled) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.registerLocked(ctx, compiled)
}

func (r *RemoteAdapter) registerLocked(ctx context.Context, compiled *ptemplate.Compiled) error {
	if r.registered[compiled.Fingerprint] {
		return nil
	}
	frame, err := compiled.Encode()
	if err != nil {
		return fmt.Errorf("client: remote: %w", err)
	}
	req := remoteRequest{Op: "register_template", Template: json.RawMessage(frame)}
	if _, err := r.exchangeLocked(ctx, &req); err != nil {
		return err
	}
	if r.registered == nil {
		r.registered = map[string]bool{}
	}
	r.registered[compiled.Fingerprint] = true
	return nil
}

// SubmitBoundCtx submits one sweep point: the compiled template ships once
// per connection (first call registers it) and every point afterwards is a
// small bindings frame referencing it by fingerprint. Bindings are
// validated locally first, so an out-of-range or non-finite value fails
// with ptemplate.ErrBadParam before touching the wire.
func (r *RemoteAdapter) SubmitBoundCtx(ctx context.Context, device string, compiled *ptemplate.Compiled, b ptemplate.Bindings, opts SubmitOptions) (*qpi.Result, error) {
	if err := compiled.Validate(b); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.registerLocked(ctx, compiled); err != nil {
		return nil, err
	}
	req := remoteRequest{
		Op: "submit_bound", TemplateID: compiled.Fingerprint, Bindings: b,
		Device: device, Pool: opts.Pool,
		Shots: opts.Shots, Priority: opts.Priority, Tag: opts.Tag,
		ShotWorkers: opts.ShotWorkers, CalibrationEpoch: opts.CalibrationEpoch,
	}
	if req.CalibrationEpoch == 0 {
		// Default to the epoch the template was lowered against, so the
		// scheduler's staleness gate protects bound points automatically.
		req.CalibrationEpoch = compiled.Epoch
	}
	if opts.MeasLevel != readout.LevelDiscriminated {
		req.MeasLevel = opts.MeasLevel.String()
		req.MeasReturn = opts.MeasReturn.String()
	}
	resp, err := r.exchangeTraced(ctx, &req, opts)
	if err != nil {
		return nil, err
	}
	return resultFromWire(resp, opts)
}

// exchangeLocked performs one line-framed request/response round trip on
// the shared connection; r.mu must be held. The remaining ctx budget ships
// as the server-side job timeout, and any wire error poisons the
// connection (see wireError).
func (r *RemoteAdapter) exchangeLocked(ctx context.Context, req *remoteRequest) (*remoteResponse, error) {
	if r.conn == nil {
		return nil, fmt.Errorf("client: remote adapter closed")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("client: remote: %w", err)
	}
	if dl, ok := ctx.Deadline(); ok {
		remaining := time.Until(dl)
		if remaining <= 0 {
			return nil, fmt.Errorf("client: remote: %w", context.DeadlineExceeded)
		}
		// Round sub-millisecond budgets up to 1ms: truncating to 0 would
		// read as "no deadline" server-side and leave the job unbounded.
		req.TimeoutMs = remaining.Milliseconds()
		if req.TimeoutMs == 0 {
			req.TimeoutMs = 1
		}
		_ = r.conn.SetWriteDeadline(dl)
	}
	conn := r.conn

	data, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(append(data, '\n')); err != nil {
		return nil, r.wireError(ctx, err)
	}
	_ = conn.SetWriteDeadline(time.Time{})
	// Read in short deadline slices, checking ctx between them: a fired
	// ctx surfaces within one slice, and — unlike an asynchronous
	// interrupt — no callback can race a successful exchange and leave a
	// stale past deadline on the shared connection.
	var line []byte
	for {
		_ = conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		chunk, err := r.rd.ReadBytes('\n')
		line = append(line, chunk...)
		if err == nil {
			break
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() && ctx.Err() == nil {
			continue // still waiting; partial data accumulated above
		}
		return nil, r.wireError(ctx, err)
	}
	_ = conn.SetReadDeadline(time.Time{})
	var resp remoteResponse
	if err := json.Unmarshal(line, &resp); err != nil {
		return nil, err
	}
	if resp.Error != "" {
		return nil, errorFromWire(resp.ErrorKind, resp.Error)
	}
	return &resp, nil
}

// resultFromWire rebuilds a qpi.Result from a wire response, enforcing
// that the server honored the requested measurement level.
func resultFromWire(resp *remoteResponse, opts SubmitOptions) (*qpi.Result, error) {
	counts := map[uint64]int{}
	for k, v := range resp.Counts {
		var mask uint64
		if _, err := fmt.Sscanf(k, "%d", &mask); err != nil {
			return nil, fmt.Errorf("client: remote counts key %q: %v", k, err)
		}
		counts[mask] = v
	}
	out := &qpi.Result{Counts: counts, Shots: resp.Shots, DurationSeconds: resp.DurationSeconds}
	if opts.MeasLevel != readout.LevelDiscriminated && resp.MeasLevel == "" {
		// An older server ignores the meas_level request field and returns
		// plain counts; fail loudly rather than silently downgrading.
		return nil, fmt.Errorf("client: remote: %w: server returned no %s measurement data",
			qdmi.ErrNotSupported, opts.MeasLevel)
	}
	if resp.MeasLevel != "" {
		level, err := readout.ParseMeasLevel(resp.MeasLevel)
		if err != nil {
			return nil, fmt.Errorf("client: remote: %w", err)
		}
		if opts.MeasLevel != readout.LevelDiscriminated && level != opts.MeasLevel {
			// A server downgrading raw → kerneled (or similar) would leave
			// the promised fields nil; fail loudly instead.
			return nil, fmt.Errorf("client: remote: %w: requested %s data, server returned %s",
				qdmi.ErrNotSupported, opts.MeasLevel, level)
		}
		out.MeasLevel = level
		out.Bits = resp.Bits
		out.IQ = make([][]readout.IQ, len(resp.IQ))
		for k, row := range resp.IQ {
			pts := make([]readout.IQ, len(row))
			for i, p := range row {
				pts[i] = readout.IQ{I: p[0], Q: p[1]}
			}
			out.IQ[k] = pts
		}
		if len(resp.Raw) > 0 {
			out.Raw = make([][][]complex128, len(resp.Raw))
			for k, shot := range resp.Raw {
				traces := make([][]complex128, len(shot))
				for i, tr := range shot {
					dec := make([]complex128, len(tr))
					for j, v := range tr {
						dec[j] = complex(v[0], v[1])
					}
					traces[i] = dec
				}
				out.Raw[k] = traces
			}
		}
	}
	return out, nil
}

// wireError maps an I/O error on the shared connection. The line-oriented
// protocol cannot resynchronize after a partial exchange, so any wire
// error poisons the connection: close it so later submissions fail fast
// instead of desyncing. A fired context is reported as the context error.
func (r *RemoteAdapter) wireError(ctx context.Context, err error) error {
	r.closeLocked()
	if cerr := ctx.Err(); cerr != nil {
		return fmt.Errorf("client: remote: %w", cerr)
	}
	return err
}

// SubmitPayload sends a payload detached from any context.
//
// Deprecated: use SubmitPayloadCtx so deadlines cross the wire.
func (r *RemoteAdapter) SubmitPayload(device string, payload []byte, format qdmi.ProgramFormat, shots int) (*qpi.Result, error) {
	return r.SubmitPayloadCtx(context.Background(), device, payload, format, SubmitOptions{Shots: shots})
}

// StartPayloadCtx is the asynchronous form of SubmitPayloadCtx: it returns
// a qpi.Handle immediately and performs the wire round trip in the
// background. The handle's Timeline carries the full cross-machine trace —
// any spans already on opts.Timeline (a compile span from CompileTraced),
// the client-side dispatch span around the exchange, and the imported
// server-side spans. Cancelling the handle (or ctx) interrupts the wait.
func (r *RemoteAdapter) StartPayloadCtx(ctx context.Context, device string, payload []byte, format qdmi.ProgramFormat, opts SubmitOptions) (qpi.Handle, error) {
	tl := opts.Timeline
	if tl == nil {
		tl = telemetry.NewTimeline(opts.TraceID, nil)
		opts.Timeline = tl
	}
	hctx, cancel := context.WithCancel(ctx)
	h := &remoteHandle{
		id:     tl.TraceID(),
		tl:     tl,
		cancel: cancel,
		done:   make(chan struct{}),
		status: qpi.ExecRunning,
	}
	go func() {
		defer close(h.done)
		defer cancel()
		res, err := r.SubmitPayloadCtx(hctx, device, payload, format, opts)
		h.mu.Lock()
		defer h.mu.Unlock()
		h.res, h.err = res, err
		switch {
		case err == nil:
			h.status = qpi.ExecDone
		case errors.Is(err, context.Canceled), errors.Is(err, qrm.ErrCancelled):
			h.status = qpi.ExecCancelled
		default:
			h.status = qpi.ExecFailed
		}
	}()
	return h, nil
}

// remoteHandle adapts an in-flight remote submission to the qpi.Handle
// future interface. The remote protocol is synchronous per exchange, so
// the handle tracks a background goroutine performing the round trip.
type remoteHandle struct {
	id     string
	tl     *telemetry.Timeline
	cancel context.CancelFunc
	done   chan struct{}

	mu     sync.Mutex
	status qpi.ExecStatus
	res    *qpi.Result
	err    error
}

// ID implements qpi.Handle: the submission's trace ID (the remote wire has
// no job-ID concept of its own).
func (h *remoteHandle) ID() string { return h.id }

// Status implements qpi.Handle.
func (h *remoteHandle) Status() qpi.ExecStatus {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.status
}

// Cancel implements qpi.Handle: the exchange context is cancelled, which
// interrupts the wire wait (and, through the shipped timeout, bounds the
// server-side job).
func (h *remoteHandle) Cancel() { h.cancel() }

// Wait implements qpi.Handle.
func (h *remoteHandle) Wait(ctx context.Context) (*qpi.Result, error) {
	select {
	case <-h.done:
		h.mu.Lock()
		defer h.mu.Unlock()
		return h.res, h.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Timeline implements qpi.Handle: the cross-machine trace of the
// submission.
func (h *remoteHandle) Timeline() *telemetry.Timeline { return h.tl }
