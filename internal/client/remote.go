package client

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"mqsspulse/internal/qdmi"
	"mqsspulse/internal/qpi"
	"mqsspulse/internal/qrm"
)

// The remote protocol is one JSON object per line in each direction —
// the REST-like submission path of Fig. 2, reduced to its essentials.

// remoteRequest is the wire form of a job submission.
type remoteRequest struct {
	Device  string `json:"device"`
	Format  string `json:"format"`
	Payload string `json:"payload"`
	Shots   int    `json:"shots"`
}

// remoteResponse is the wire form of a completed job.
type remoteResponse struct {
	Error           string            `json:"error,omitempty"`
	Counts          map[string]int    `json:"counts,omitempty"`
	Shots           int               `json:"shots"`
	DurationSeconds float64           `json:"duration_seconds"`
	DeviceInfo      map[string]string `json:"device_info,omitempty"`
}

// Server exposes a client's devices over TCP for remote submission.
type Server struct {
	client *Client
	ln     net.Listener
	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
}

// NewServer starts listening on addr ("127.0.0.1:0" for an ephemeral port).
func NewServer(c *Client, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{client: c, ln: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and waits for in-flight connections.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serve(conn)
		}()
	}
}

func (s *Server) serve(conn net.Conn) {
	defer conn.Close()
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<24)
	enc := json.NewEncoder(conn)
	for scanner.Scan() {
		var req remoteRequest
		if err := json.Unmarshal(scanner.Bytes(), &req); err != nil {
			_ = enc.Encode(remoteResponse{Error: "malformed request: " + err.Error()})
			continue
		}
		resp := s.handle(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(req *remoteRequest) remoteResponse {
	tk, err := s.client.qrm.Submit(qrm.Request{
		Device:  req.Device,
		Payload: []byte(req.Payload),
		Format:  qdmi.ProgramFormat(req.Format),
		Shots:   req.Shots,
	})
	if err != nil {
		return remoteResponse{Error: err.Error()}
	}
	res, err := tk.Wait()
	if err != nil {
		return remoteResponse{Error: err.Error()}
	}
	counts := make(map[string]int, len(res.Counts))
	for mask, n := range res.Counts {
		counts[fmt.Sprintf("%d", mask)] = n
	}
	return remoteResponse{Counts: counts, Shots: res.Shots, DurationSeconds: res.DurationSeconds}
}

// RemoteAdapter submits compiled payloads to a remote MQSS client over TCP.
type RemoteAdapter struct {
	addr string

	mu   sync.Mutex
	conn net.Conn
	rd   *bufio.Reader
}

// NewRemoteAdapter dials the remote server.
func NewRemoteAdapter(addr string) (*RemoteAdapter, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &RemoteAdapter{addr: addr, conn: conn, rd: bufio.NewReaderSize(conn, 1<<20)}, nil
}

// Close shuts the connection.
func (r *RemoteAdapter) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.conn != nil {
		r.conn.Close()
		r.conn = nil
	}
}

// SubmitPayload sends a precompiled exchange-format payload and waits for
// the result.
func (r *RemoteAdapter) SubmitPayload(device string, payload []byte, format qdmi.ProgramFormat, shots int) (*qpi.Result, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.conn == nil {
		return nil, fmt.Errorf("client: remote adapter closed")
	}
	req := remoteRequest{Device: device, Format: string(format), Payload: string(payload), Shots: shots}
	data, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	if _, err := r.conn.Write(append(data, '\n')); err != nil {
		return nil, err
	}
	line, err := r.rd.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	var resp remoteResponse
	if err := json.Unmarshal(line, &resp); err != nil {
		return nil, err
	}
	if resp.Error != "" {
		return nil, fmt.Errorf("client: remote: %s", resp.Error)
	}
	counts := map[uint64]int{}
	for k, v := range resp.Counts {
		var mask uint64
		if _, err := fmt.Sscanf(k, "%d", &mask); err != nil {
			return nil, fmt.Errorf("client: remote counts key %q: %v", k, err)
		}
		counts[mask] = v
	}
	return &qpi.Result{Counts: counts, Shots: resp.Shots, DurationSeconds: resp.DurationSeconds}, nil
}
