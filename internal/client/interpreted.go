package client

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"mqsspulse/internal/qpi"
)

// InterpretedAdapter is the scripting-runtime stand-in for the paper's
// Section 5.1 overhead comparison: instead of calling compiled QPI
// functions, callers hand over a textual program which the adapter
// tokenizes, validates, and interprets into a kernel on every submission —
// paying parse, allocation, and dynamic-dispatch costs per call, exactly
// where a Python front end pays interpreter costs.
//
// Program grammar (one statement per line, '#' comments):
//
//	circuit <name> <qubits> <classical>
//	x|y|z|h|s|t|sx <qubit>
//	rx|ry|rz <qubit> <theta>
//	cz|cx|iswap <a> <b>
//	waveform <name> <re,im> <re,im> ...
//	play <port> <waveform>
//	framechange <port> <freqHz> <phaseRad>
//	delay <port> <samples>
//	barrier
//	measure <qubit> <cbit>
type InterpretedAdapter struct {
	Client *Client
	Target string
	// ParseCacheEnabled memoizes parsed programs (ablation knob); off by
	// default to model a naive interpreter.
	ParseCacheEnabled bool

	cache map[string]*qpi.Circuit
}

// Name identifies the adapter.
func (a *InterpretedAdapter) Name() string { return "interpreted/" + a.Target }

// ParseProgram interprets the textual program into a QPI kernel.
func (a *InterpretedAdapter) ParseProgram(src string) (*qpi.Circuit, error) {
	if a.ParseCacheEnabled {
		if a.cache == nil {
			a.cache = map[string]*qpi.Circuit{}
		}
		if c, ok := a.cache[src]; ok {
			return c, nil
		}
	}
	var c *qpi.Circuit
	for ln, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		op := fields[0]
		argErr := func() error {
			return fmt.Errorf("client: line %d: malformed %q", ln+1, line)
		}
		if op == "circuit" {
			if len(fields) != 4 {
				return nil, argErr()
			}
			q, err1 := strconv.Atoi(fields[2])
			cl, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil {
				return nil, argErr()
			}
			c = qpi.NewCircuit(fields[1], q, cl)
			continue
		}
		if c == nil {
			return nil, fmt.Errorf("client: line %d: statement before circuit header", ln+1)
		}
		switch op {
		case "x", "y", "z", "h", "s", "t", "sx":
			if len(fields) != 2 {
				return nil, argErr()
			}
			q, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, argErr()
			}
			c.Gate(op, []int{q})
		case "rx", "ry", "rz":
			if len(fields) != 3 {
				return nil, argErr()
			}
			q, err1 := strconv.Atoi(fields[1])
			theta, err2 := strconv.ParseFloat(fields[2], 64)
			if err1 != nil || err2 != nil {
				return nil, argErr()
			}
			c.Gate(op, []int{q}, theta)
		case "cz", "cx", "iswap":
			if len(fields) != 3 {
				return nil, argErr()
			}
			qa, err1 := strconv.Atoi(fields[1])
			qb, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, argErr()
			}
			c.Gate(op, []int{qa, qb})
		case "waveform":
			if len(fields) < 3 {
				return nil, argErr()
			}
			samples := make([]complex128, 0, len(fields)-2)
			for _, f := range fields[2:] {
				parts := strings.SplitN(f, ",", 2)
				if len(parts) != 2 {
					return nil, argErr()
				}
				re, err1 := strconv.ParseFloat(parts[0], 64)
				im, err2 := strconv.ParseFloat(parts[1], 64)
				if err1 != nil || err2 != nil {
					return nil, argErr()
				}
				samples = append(samples, complex(re, im))
			}
			c.Waveform(fields[1], samples)
		case "play":
			if len(fields) != 3 {
				return nil, argErr()
			}
			c.PlayWaveform(fields[1], fields[2])
		case "framechange":
			if len(fields) != 4 {
				return nil, argErr()
			}
			freq, err1 := strconv.ParseFloat(fields[2], 64)
			phase, err2 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil {
				return nil, argErr()
			}
			c.FrameChange(fields[1], freq, phase)
		case "delay":
			if len(fields) != 3 {
				return nil, argErr()
			}
			n, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, argErr()
			}
			c.Delay(fields[1], n)
		case "barrier":
			c.Barrier()
		case "measure":
			if len(fields) != 3 {
				return nil, argErr()
			}
			q, err1 := strconv.Atoi(fields[1])
			cb, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, argErr()
			}
			c.Measure(q, cb)
		default:
			return nil, fmt.Errorf("client: line %d: unknown statement %q", ln+1, op)
		}
	}
	if c == nil {
		return nil, fmt.Errorf("client: program has no circuit header")
	}
	if err := c.End(); err != nil {
		return nil, err
	}
	if a.ParseCacheEnabled {
		a.cache[src] = c
	}
	return c, nil
}

// ExecuteCtx parses and runs a textual program under ctx: cancellation and
// deadlines propagate through the scheduler to the device.
func (a *InterpretedAdapter) ExecuteCtx(ctx context.Context, src string, opts SubmitOptions) (*qpi.Result, error) {
	c, err := a.ParseProgram(src)
	if err != nil {
		return nil, err
	}
	return a.Client.RunCtx(ctx, c, a.Target, opts)
}

// Execute parses and runs a textual program detached from any context.
//
// Deprecated: use ExecuteCtx.
func (a *InterpretedAdapter) Execute(src string, shots int) (*qpi.Result, error) {
	return a.ExecuteCtx(context.Background(), src, SubmitOptions{Shots: shots})
}
