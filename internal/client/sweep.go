package client

import (
	"context"
	"fmt"
	"time"

	"mqsspulse/internal/ptemplate"
	"mqsspulse/internal/qpi"
	"mqsspulse/internal/qrm"
	"mqsspulse/internal/telemetry"
)

// CompileTemplate lowers a parametric template against a device exactly
// once per (template fingerprint, device, calibration epoch) and serves
// every subsequent lookup from the lowering cache. Bound parameter values
// never enter the cache key, so an N-point sweep costs one compilation:
// the first lookup records a miss, the remaining N−1 record binds (see
// CacheStats.Binds), and a calibration-epoch bump invalidates the entry
// exactly like a concrete payload's.
func (c *Client) CompileTemplate(t *ptemplate.Template, device string) (*ptemplate.Compiled, error) {
	compiled, _, err := c.compileTemplate(t, device)
	return compiled, err
}

// compileTemplate is CompileTemplate plus a cache-hot flag: true when the
// lookup was served from a cached compiled template (a bind, not a
// compile) — the flag the sweep path turns into cache-hit/miss spans.
func (c *Client) compileTemplate(t *ptemplate.Template, device string) (*ptemplate.Compiled, bool, error) {
	dev, err := c.session.Device(device)
	if err != nil {
		return nil, false, err
	}
	// Epoch before the cache probe, mirroring compile(): a recalibration
	// landing mid-lookup can only make the entry look stale.
	epoch, err := deviceEpoch(dev)
	if err != nil {
		return nil, false, err
	}
	key := ""
	if c.CacheEnabled {
		key = t.Fingerprint(device)
		c.mu.Lock()
		if el, ok := c.loweringCache[key]; ok {
			entry := el.Value.(*cacheEntry)
			if entry.tpl != nil && entry.epoch == epoch {
				// Cache-hot template: this sweep point is a bind, not a
				// compile — the distinction CacheStats.Binds exists to show.
				c.cacheStats.Binds++
				c.lruList.MoveToFront(el)
				c.mu.Unlock()
				c.telem.Add("client/cache_hits", 1)
				return entry.tpl, true, nil
			}
			// Compiled against a calibration the device has left (or the key
			// collided with a non-template entry): drop and recompile.
			c.removeLocked(el)
			c.cacheStats.Invalidations++
		}
		c.cacheStats.Misses++
		c.mu.Unlock()
		c.telem.Add("client/cache_misses", 1)
	}
	compiled, err := ptemplate.Lower(t, dev, device)
	if err != nil {
		return nil, false, err
	}
	if c.CacheEnabled {
		c.mu.Lock()
		if el, ok := c.loweringCache[key]; ok {
			// A concurrent lowering of the same template won the race; keep
			// its entry and just refresh recency.
			c.lruList.MoveToFront(el)
			if entry := el.Value.(*cacheEntry); entry.tpl != nil {
				compiled = entry.tpl
			}
		} else {
			entry := &cacheEntry{key: key, format: compiled.Format, epoch: compiled.Epoch, tpl: compiled}
			c.loweringCache[key] = c.lruList.PushFront(entry)
			c.templateEntries++
			c.evictLocked()
		}
		c.mu.Unlock()
	}
	return compiled, false, nil
}

// SubmitSweepCtx enqueues one job per sweep point: the template lowers at
// most once (served cache-hot afterwards, see CompileTemplate) and each
// point ships as a (compiled template, bindings) pair that the scheduler
// binds at dispatch time — after the calibration-epoch gate. The returned
// slices are parallel to bindings; a point with an out-of-range or
// non-finite value fails in place with ptemplate.ErrBadParam before
// reaching the scheduler queue, without sinking its siblings.
func (c *Client) SubmitSweepCtx(ctx context.Context, t *ptemplate.Template, device string,
	bindings []ptemplate.Bindings, opts SubmitOptions) ([]*qrm.Ticket, []error) {

	tickets := make([]*qrm.Ticket, len(bindings))
	errs := make([]error, len(bindings))
	fail := func(err error) ([]*qrm.Ticket, []error) {
		for i := range errs {
			errs[i] = err
		}
		return tickets, errs
	}
	if opts.Shots <= 0 {
		opts.Shots = qpi.DefaultShots
	}
	if err := ctx.Err(); err != nil {
		return fail(fmt.Errorf("client: sweep: %w", err))
	}
	target, err := c.compileTarget(device, opts)
	if err != nil {
		return fail(err)
	}
	// One trace ID spans the sweep; each point gets its own timeline under
	// a /p<i> suffix so per-point stage latencies stay separable while the
	// fleet histograms see every point.
	sweepTrace := opts.TraceID
	if sweepTrace == "" {
		sweepTrace = telemetry.NewTraceID()
	}
	for i, b := range bindings {
		tl := telemetry.NewTimeline(fmt.Sprintf("%s/p%d", sweepTrace, i), c.telem)
		// Per-point template lookup: point 0 compiles, the rest bind. Going
		// through the cache each iteration (rather than hoisting one compile)
		// keeps a mid-sweep recalibration from dispatching stale points —
		// the invalidated entry recompiles at the new epoch.
		compileStart := time.Now()
		compiled, hot, err := c.compileTemplate(t, target)
		if err != nil {
			errs[i] = err
			continue
		}
		compileDur := time.Since(compileStart)
		span := tl.Record(telemetry.StageCompile, target, compileStart, compileDur, 0)
		cacheStage := telemetry.StageCacheMiss
		if hot {
			cacheStage = telemetry.StageCacheHit
		}
		tl.Record(cacheStage, target, compileStart, compileDur, span)
		req := qrm.Request{
			Device: device, Template: compiled, Bindings: b,
			Shots: opts.Shots, Priority: opts.Priority, Tag: opts.Tag,
			MeasLevel: opts.MeasLevel, MeasReturn: opts.MeasReturn,
			CalibrationEpoch: compiled.Epoch, CompiledFor: target,
			Timeline: tl, ShotWorkers: opts.ShotWorkers,
		}
		if opts.Pool != "" {
			req.Device, req.Pool = "", opts.Pool
		}
		tickets[i], errs[i] = c.qrm.SubmitCtx(ctx, req)
	}
	return tickets, errs
}

// RunSweep submits every sweep point and waits for all of them — the
// synchronous calibration-loop entry point (Rabi, Ramsey, DRAG tune-ups).
// The result slice is parallel to bindings; per-point failures (including
// ptemplate.ErrBadParam validation rejections) surface in place.
func (c *Client) RunSweep(ctx context.Context, t *ptemplate.Template, device string,
	bindings []ptemplate.Bindings, opts SubmitOptions) ([]BatchResult, error) {

	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("client: sweep: %w", err)
	}
	tickets, errs := c.SubmitSweepCtx(ctx, t, device, bindings, opts)
	out := make([]BatchResult, len(bindings))
	for i, tk := range tickets {
		if tk == nil {
			out[i].Err = errs[i]
			continue
		}
		res, err := tk.Wait(ctx)
		if err != nil {
			out[i].Err = err
			continue
		}
		out[i].Result = resultFromQDMI(res)
	}
	return out, nil
}
