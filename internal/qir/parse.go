package qir

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseModule reads the textual form produced by Emit. The parser accepts
// the straight-line Base/Pulse-Profile subset: one entry function of call
// instructions, waveform constants, the #0 attribute group, and the !ports
// metadata line.
func ParseModule(src string) (*Module, error) {
	m := &Module{Profile: ProfileBase}
	lines := strings.Split(src, "\n")
	inBody := false
	for ln, raw := range lines {
		line := strings.TrimSpace(raw)
		switch {
		case line == "" || strings.HasPrefix(line, "%"):
			// blank or opaque type decl
		case strings.HasPrefix(line, "; ModuleID"):
			if i := strings.Index(line, "'"); i >= 0 {
				rest := line[i+1:]
				if j := strings.Index(rest, "'"); j >= 0 {
					m.ID = rest[:j]
				}
			}
		case strings.HasPrefix(line, ";"):
			// comment
		case strings.HasPrefix(line, "@"):
			w, err := parseWaveformConst(line)
			if err != nil {
				return nil, fmt.Errorf("qir: line %d: %w", ln+1, err)
			}
			m.Waveforms = append(m.Waveforms, w)
		case strings.HasPrefix(line, "define void @"):
			name := strings.TrimPrefix(line, "define void @")
			if i := strings.Index(name, "("); i >= 0 {
				name = name[:i]
			}
			m.EntryName = name
			inBody = true
		case line == "entry:":
			// label
		case strings.HasPrefix(line, "call void @"):
			if !inBody {
				return nil, fmt.Errorf("qir: line %d: call outside function body", ln+1)
			}
			c, err := parseCall(line)
			if err != nil {
				return nil, fmt.Errorf("qir: line %d: %w", ln+1, err)
			}
			m.Body = append(m.Body, c)
		case line == "ret void":
			// terminator
		case line == "}":
			inBody = false
		case strings.HasPrefix(line, "declare"):
			// declarations are recomputed from the body
		case strings.HasPrefix(line, "attributes #0"):
			if err := parseAttributes(line, m); err != nil {
				return nil, fmt.Errorf("qir: line %d: %w", ln+1, err)
			}
		case strings.HasPrefix(line, "!ports"):
			m.PortNames = parsePortsMeta(line)
		default:
			return nil, fmt.Errorf("qir: line %d: unrecognized syntax %q", ln+1, line)
		}
	}
	if m.EntryName == "" {
		return nil, fmt.Errorf("qir: no entry function found")
	}
	return m, nil
}

func parseWaveformConst(line string) (WaveformConst, error) {
	// @name = private constant [N x double] [double a, double b, ...]
	var w WaveformConst
	eq := strings.Index(line, " =")
	if eq < 0 {
		return w, fmt.Errorf("malformed waveform constant")
	}
	w.Name = strings.TrimPrefix(line[:eq], "@")
	open := strings.Index(line, "] [")
	if open < 0 {
		return w, fmt.Errorf("malformed waveform data")
	}
	data := line[open+3:]
	if i := strings.LastIndex(data, "]"); i >= 0 {
		data = data[:i]
	}
	fields := strings.Split(data, ",")
	vals := make([]float64, 0, len(fields))
	for _, f := range fields {
		f = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(f), "double"))
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return w, fmt.Errorf("bad sample %q: %v", f, err)
		}
		vals = append(vals, v)
	}
	if len(vals)%2 != 0 {
		return w, fmt.Errorf("odd interleaved sample count %d", len(vals))
	}
	for i := 0; i < len(vals); i += 2 {
		w.Samples = append(w.Samples, complex(vals[i], vals[i+1]))
	}
	return w, nil
}

func parseCall(line string) (Call, error) {
	var c Call
	rest := strings.TrimPrefix(line, "call void @")
	open := strings.Index(rest, "(")
	if open < 0 || !strings.HasSuffix(rest, ")") {
		return c, fmt.Errorf("malformed call")
	}
	c.Callee = rest[:open]
	argstr := rest[open+1 : len(rest)-1]
	if strings.TrimSpace(argstr) == "" {
		return c, nil
	}
	for _, part := range splitTopLevel(argstr) {
		a, err := parseArg(strings.TrimSpace(part))
		if err != nil {
			return c, err
		}
		c.Args = append(c.Args, a)
	}
	return c, nil
}

// splitTopLevel splits on commas not inside parentheses (inttoptr args
// contain nested parens).
func splitTopLevel(s string) []string {
	var parts []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}

func parseArg(s string) (Arg, error) {
	switch {
	case strings.HasPrefix(s, "%Qubit* inttoptr"):
		i, err := extractHandle(s)
		return QubitArg(i), err
	case strings.HasPrefix(s, "%Result* inttoptr"):
		i, err := extractHandle(s)
		return ResultArg(i), err
	case strings.HasPrefix(s, "%Port* inttoptr"):
		i, err := extractHandle(s)
		return PortArg(i), err
	case strings.HasPrefix(s, "%Waveform* @"):
		return WaveformArg(strings.TrimPrefix(s, "%Waveform* @")), nil
	case strings.HasPrefix(s, "double "):
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(s, "double ")), 64)
		return F64Arg(v), err
	case strings.HasPrefix(s, "i64 "):
		v, err := strconv.ParseInt(strings.TrimSpace(strings.TrimPrefix(s, "i64 ")), 10, 64)
		return I64Arg(v), err
	default:
		return Arg{}, fmt.Errorf("unrecognized argument %q", s)
	}
}

// extractHandle pulls N out of "%T* inttoptr (i64 N to %T*)".
func extractHandle(s string) (int64, error) {
	open := strings.Index(s, "(i64 ")
	if open < 0 {
		return 0, fmt.Errorf("malformed inttoptr %q", s)
	}
	rest := s[open+5:]
	end := strings.Index(rest, " to ")
	if end < 0 {
		return 0, fmt.Errorf("malformed inttoptr %q", s)
	}
	return strconv.ParseInt(rest[:end], 10, 64)
}

func parseAttributes(line string, m *Module) error {
	get := func(key string) (string, bool) {
		tag := "\"" + key + "\"=\""
		i := strings.Index(line, tag)
		if i < 0 {
			return "", false
		}
		rest := line[i+len(tag):]
		j := strings.Index(rest, "\"")
		if j < 0 {
			return "", false
		}
		return rest[:j], true
	}
	if v, ok := get("qir_profiles"); ok {
		m.Profile = v
	}
	for key, dst := range map[string]*int{
		"required_num_qubits":  &m.NumQubits,
		"required_num_results": &m.NumResults,
		"required_num_ports":   &m.NumPorts,
	} {
		if v, ok := get(key); ok {
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("bad %s=%q", key, v)
			}
			*dst = n
		}
	}
	return nil
}

func parsePortsMeta(line string) []string {
	var out []string
	rest := line
	for {
		i := strings.Index(rest, "!\"")
		if i < 0 {
			break
		}
		rest = rest[i+2:]
		j := strings.Index(rest, "\"")
		if j < 0 {
			break
		}
		out = append(out, rest[:j])
		rest = rest[j+1:]
	}
	return out
}
