package qir

import (
	"fmt"
	"strings"
)

// Emit renders the module as human-readable LLVM-flavored IR, matching the
// shape of the paper's Listing 3: opaque type declarations, waveform
// constants, one entry function of straight-line intrinsic calls, intrinsic
// declarations, and the attribute group carrying the profile.
func (m *Module) Emit() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; ModuleID = '%s'\n", m.ID)
	sb.WriteString("%Qubit = type opaque\n")
	sb.WriteString("%Result = type opaque\n")
	sb.WriteString("%Port = type opaque\n")
	sb.WriteString("%Waveform = type opaque\n")
	sb.WriteString("%Frame = type opaque\n")
	sb.WriteString("\n")

	for _, w := range m.Waveforms {
		if w.AmpExpr != nil {
			// An unbound waveform has no concrete sample image; emitting one
			// is a caller bug (Bind must run first). Fail loudly at parse.
			fmt.Fprintf(&sb, "@%s = <unbound param %q>\n", w.Name, w.AmpExpr.Param)
			continue
		}
		// Interleaved I/Q doubles, like an AWG memory image.
		fmt.Fprintf(&sb, "@%s = private constant [%d x double] [", w.Name, 2*len(w.Samples))
		for i, s := range w.Samples {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "double %g, double %g", real(s), imag(s))
		}
		sb.WriteString("]\n")
	}
	if len(m.Waveforms) > 0 {
		sb.WriteString("\n")
	}

	fmt.Fprintf(&sb, "define void @%s() #0 {\n", m.EntryName)
	sb.WriteString("entry:\n")
	for _, c := range m.Body {
		sb.WriteString("  call void @" + c.Callee + "(")
		for i, a := range c.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(renderArg(a))
		}
		sb.WriteString(")\n")
	}
	sb.WriteString("  ret void\n")
	sb.WriteString("}\n\n")

	// Declarations for every callee used.
	declared := map[string]bool{}
	for _, c := range m.Body {
		if declared[c.Callee] {
			continue
		}
		declared[c.Callee] = true
		fmt.Fprintf(&sb, "declare void @%s(%s)\n", c.Callee, declArgs(c))
	}
	sb.WriteString("\n")

	fmt.Fprintf(&sb, "attributes #0 = { \"entry_point\" \"qir_profiles\"=\"%s\" "+
		"\"output_labeling_schema\"=\"labeled\" \"required_num_qubits\"=\"%d\" "+
		"\"required_num_results\"=\"%d\" \"required_num_ports\"=\"%d\" }\n",
		m.Profile, m.NumQubits, m.NumResults, m.NumPorts)

	if len(m.PortNames) > 0 {
		sb.WriteString("\n!ports = !{")
		for i, p := range m.PortNames {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "!\"%s\"", p)
		}
		sb.WriteString("}\n")
	}
	return sb.String()
}

func renderArg(a Arg) string {
	if a.Expr != nil {
		// An unbound slot has no textual form; emitting one is a caller bug
		// (Bind must run first). The token fails loudly at parse time.
		return fmt.Sprintf("<unbound param %q>", a.Expr.Param)
	}
	switch a.Kind {
	case ArgQubit:
		return fmt.Sprintf("%%Qubit* inttoptr (i64 %d to %%Qubit*)", a.I)
	case ArgResult:
		return fmt.Sprintf("%%Result* inttoptr (i64 %d to %%Result*)", a.I)
	case ArgPort:
		return fmt.Sprintf("%%Port* inttoptr (i64 %d to %%Port*)", a.I)
	case ArgWaveform:
		return fmt.Sprintf("%%Waveform* @%s", a.Sym)
	case ArgF64:
		return fmt.Sprintf("double %g", a.F)
	case ArgI64:
		return fmt.Sprintf("i64 %d", a.I)
	default:
		return fmt.Sprintf("<bad arg kind %d>", int(a.Kind))
	}
}

func declArgs(c Call) string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		switch a.Kind {
		case ArgQubit:
			parts[i] = "%Qubit*"
		case ArgResult:
			parts[i] = "%Result*"
		case ArgPort:
			parts[i] = "%Port*"
		case ArgWaveform:
			parts[i] = "%Waveform*"
		case ArgF64:
			parts[i] = "double"
		case ArgI64:
			parts[i] = "i64"
		}
	}
	return strings.Join(parts, ", ")
}
