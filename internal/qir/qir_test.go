package qir

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"mqsspulse/internal/pulse"
)

// listing3Module reconstructs the paper's Listing 3: a pulse-profile module
// mixing pulse intrinsics with gate-level mz calls.
func listing3Module() *Module {
	return &Module{
		ID:         "my_pulse",
		Profile:    ProfilePulse,
		EntryName:  "my_pulse",
		NumQubits:  2,
		NumResults: 2,
		NumPorts:   1,
		PortNames:  []string{"q0-drive-port"},
		Waveforms: []WaveformConst{
			{Name: "waveform0", Samples: []complex128{0.1, 0.4, complex(0.8, 0.1), 0.4, 0.1}},
		},
		Body: []Call{
			{Callee: IntrWaveform, Args: []Arg{WaveformArg("waveform0")}},
			{Callee: IntrPlay, Args: []Arg{PortArg(0), WaveformArg("waveform0")}},
			{Callee: IntrFrameChange, Args: []Arg{PortArg(0), F64Arg(5.1e9), F64Arg(0.25)}},
			{Callee: IntrDelay, Args: []Arg{PortArg(0), I64Arg(1024)}},
			{Callee: IntrMz, Args: []Arg{QubitArg(0), ResultArg(0)}},
			{Callee: IntrMz, Args: []Arg{QubitArg(1), ResultArg(1)}},
		},
	}
}

func TestListing3Verifies(t *testing.T) {
	m := listing3Module()
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	if !m.UsesPulse() {
		t.Fatal("pulse use not detected")
	}
}

func TestEmitContainsListing3Landmarks(t *testing.T) {
	text := listing3Module().Emit()
	for _, want := range []string{
		"; ModuleID = 'my_pulse'",
		"%Port = type opaque",
		"%Waveform = type opaque",
		"%Frame = type opaque",
		"define void @my_pulse() #0",
		"call void @__quantum__pulse__waveform_play__body",
		"call void @__quantum__pulse__frame_change__body",
		"call void @__quantum__qis__mz__body",
		`"qir_profiles"="pulse"`,
		`"required_num_ports"="1"`,
		"declare void @__quantum__pulse__waveform_play__body(%Port*, %Waveform*)",
		`!ports = !{!"q0-drive-port"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("emitted module missing %q\n%s", want, text)
		}
	}
}

func TestEmitParseRoundtrip(t *testing.T) {
	m := listing3Module()
	text := m.Emit()
	back, err := ParseModule(text)
	if err != nil {
		t.Fatalf("%v\nsource:\n%s", err, text)
	}
	if err := back.Verify(); err != nil {
		t.Fatal(err)
	}
	if back.Emit() != text {
		t.Fatalf("roundtrip not stable:\n%s\nvs\n%s", text, back.Emit())
	}
	if back.ID != "my_pulse" || back.Profile != ProfilePulse {
		t.Fatalf("metadata lost: %+v", back)
	}
	w, ok := back.FindWaveform("waveform0")
	if !ok || len(w.Samples) != 5 {
		t.Fatal("waveform constant lost")
	}
	if w.Samples[2] != complex(0.8, 0.1) {
		t.Fatalf("complex sample lost: %v", w.Samples[2])
	}
	if len(back.Body) != 6 {
		t.Fatalf("body has %d calls, want 6", len(back.Body))
	}
}

func TestParseRejects(t *testing.T) {
	cases := []string{
		"",                       // empty → no entry
		"gibberish at top level", // unknown syntax
		"define void @f() #0 {\n  call void @foo(bananas)\n}",
	}
	for i, src := range cases {
		if _, err := ParseModule(src); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestVerifyRejections(t *testing.T) {
	mk := func(mutate func(*Module)) error {
		m := listing3Module()
		mutate(m)
		return m.Verify()
	}
	cases := []struct {
		name   string
		mutate func(*Module)
	}{
		{"no entry", func(m *Module) { m.EntryName = "" }},
		{"bad profile", func(m *Module) { m.Profile = "turbo" }},
		{"pulse under base", func(m *Module) { m.Profile = ProfileBase }},
		{"port count mismatch", func(m *Module) { m.PortNames = nil }},
		{"dup waveform", func(m *Module) { m.Waveforms = append(m.Waveforms, m.Waveforms[0]) }},
		{"empty waveform", func(m *Module) { m.Waveforms[0].Samples = nil }},
		{"unknown intrinsic", func(m *Module) { m.Body[0].Callee = "__quantum__nope" }},
		{"arity", func(m *Module) { m.Body[1].Args = m.Body[1].Args[:1] }},
		{"arg kind", func(m *Module) { m.Body[1].Args[0] = QubitArg(0) }},
		{"qubit range", func(m *Module) { m.Body[4].Args[0] = QubitArg(9) }},
		{"result range", func(m *Module) { m.Body[4].Args[1] = ResultArg(5) }},
		{"port range", func(m *Module) { m.Body[1].Args[0] = PortArg(3) }},
		{"ghost waveform", func(m *Module) { m.Body[1].Args[1] = WaveformArg("ghost") }},
		{"barrier non-port", func(m *Module) {
			m.Body = append(m.Body, Call{Callee: IntrBarrier, Args: []Arg{QubitArg(0)}})
		}},
	}
	for _, tc := range cases {
		if err := mk(tc.mutate); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func testBinding() *DeviceBinding {
	mkPort := func(id string, site int) *pulse.Port {
		return &pulse.Port{ID: id, Kind: pulse.PortDrive, Sites: []int{site},
			SampleRateHz: 1e9, MaxAmplitude: 1.0}
	}
	return &DeviceBinding{
		Ports: []*pulse.Port{mkPort("q0-drive-port", 0), mkPort("q1-drive-port", 1)},
		FrameFor: func(portID string) (*pulse.Frame, error) {
			return pulse.NewFrame(portID+"-frame", 5.0e9), nil
		},
		LowerMeasure: func(s *pulse.Schedule, q, r int64) error {
			port := "q0-drive-port"
			if q == 1 {
				port = "q1-drive-port"
			}
			return s.Append(&pulse.Capture{Port: port, Frame: port + "-frame",
				Bit: int(r), DurationSamples: 64})
		},
	}
}

func TestBuildSchedulePulseProfile(t *testing.T) {
	m := listing3Module()
	m.NumPorts = 2
	m.PortNames = []string{"q0-drive-port", "q1-drive-port"}
	s, err := BuildSchedule(m, testBinding())
	if err != nil {
		t.Fatal(err)
	}
	// waveform upload is a no-op; play, frame_change, delay, 2 captures = 5.
	if s.Len() != 5 {
		t.Fatalf("schedule has %d instructions, want 5:\n%s", s.Len(), s)
	}
	sp, err := s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	// play(5) + delay(1024) then captures.
	if sp.TotalDuration() < 1024+5 {
		t.Fatalf("duration = %d", sp.TotalDuration())
	}
}

func TestBuildScheduleGateNeedsLowering(t *testing.T) {
	m := &Module{
		ID: "g", Profile: ProfileBase, EntryName: "g",
		NumQubits: 1, NumResults: 1,
		Body: []Call{{Callee: IntrX, Args: []Arg{QubitArg(0)}}},
	}
	b := testBinding()
	b.LowerGate = nil
	if _, err := BuildSchedule(m, b); err == nil {
		t.Fatal("gate call without LowerGate accepted")
	}
	lowered := 0
	b.LowerGate = func(s *pulse.Schedule, gate string, params []float64, qubits []int64) error {
		lowered++
		if gate != "x" || len(qubits) != 1 {
			t.Errorf("unexpected lowering: %s %v", gate, qubits)
		}
		return nil
	}
	if _, err := BuildSchedule(m, b); err != nil {
		t.Fatal(err)
	}
	if lowered != 1 {
		t.Fatal("LowerGate not invoked")
	}
}

func TestBuildScheduleRejectsUnverifiable(t *testing.T) {
	m := listing3Module()
	m.Profile = ProfileBase // pulse under base → verify fails
	if _, err := BuildSchedule(m, testBinding()); err == nil {
		t.Fatal("unverifiable module linked")
	}
}

func TestBuildScheduleInsufficientPorts(t *testing.T) {
	m := listing3Module()
	b := testBinding()
	b.Ports = b.Ports[:0]
	if _, err := BuildSchedule(m, b); err == nil {
		t.Fatal("link with zero ports accepted")
	}
}

func TestDecodeGateCall(t *testing.T) {
	g, p, q := decodeGateCall(Call{Callee: IntrRX, Args: []Arg{F64Arg(0.5), QubitArg(3)}})
	if g != "rx" || len(p) != 1 || p[0] != 0.5 || len(q) != 1 || q[0] != 3 {
		t.Fatalf("decoded %s %v %v", g, p, q)
	}
	if g, _, _ := decodeGateCall(Call{Callee: "nope"}); g != "" {
		t.Fatal("unknown callee decoded")
	}
}

func TestPulseIntrinsicNamesFollowConvention(t *testing.T) {
	for _, name := range PulseIntrinsics {
		if !strings.HasPrefix(name, "__quantum__pulse__") || !strings.HasSuffix(name, "__body") {
			t.Errorf("intrinsic %s violates naming convention", name)
		}
	}
	for gate, callee := range GateIntrinsics {
		if !strings.HasPrefix(callee, "__quantum__qis__") {
			t.Errorf("gate %s intrinsic %s violates naming convention", gate, callee)
		}
	}
}

func TestArgKindStrings(t *testing.T) {
	for k := ArgQubit; k <= ArgI64; k++ {
		if strings.HasPrefix(k.String(), "ArgKind(") {
			t.Errorf("kind %d unnamed", int(k))
		}
	}
}

func TestEmitNegativeAndSmallFloats(t *testing.T) {
	m := listing3Module()
	m.Body[2].Args[2] = F64Arg(-math.Pi)
	text := m.Emit()
	back, err := ParseModule(text)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Body[2].Args[2].F; math.Abs(got+math.Pi) > 1e-12 {
		t.Fatalf("phase roundtrip: %g", got)
	}
}

func TestQuickEmitParseRoundtrip(t *testing.T) {
	// Property: any structurally valid module survives emit→parse→emit.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		m := &Module{
			ID: fmt.Sprintf("mod_%d", trial), Profile: ProfilePulse,
			EntryName: fmt.Sprintf("entry_%d", trial),
			NumQubits: 1 + rng.Intn(3), NumResults: 1 + rng.Intn(3),
			NumPorts: 1 + rng.Intn(3),
		}
		for p := 0; p < m.NumPorts; p++ {
			m.PortNames = append(m.PortNames, fmt.Sprintf("port-%d", p))
		}
		nw := 1 + rng.Intn(3)
		for w := 0; w < nw; w++ {
			n := 1 + rng.Intn(16)
			samples := make([]complex128, n)
			for i := range samples {
				samples[i] = complex(rng.Float64()*1.6-0.8, rng.Float64()*1.6-0.8)
			}
			m.Waveforms = append(m.Waveforms, WaveformConst{
				Name: fmt.Sprintf("wf_%d", w), Samples: samples})
		}
		ops := 1 + rng.Intn(10)
		for o := 0; o < ops; o++ {
			port := PortArg(int64(rng.Intn(m.NumPorts)))
			switch rng.Intn(6) {
			case 0:
				m.Body = append(m.Body, Call{Callee: IntrPlay, Args: []Arg{
					port, WaveformArg(fmt.Sprintf("wf_%d", rng.Intn(nw)))}})
			case 1:
				m.Body = append(m.Body, Call{Callee: IntrFrameChange, Args: []Arg{
					port, F64Arg(rng.NormFloat64() * 1e9), F64Arg(rng.NormFloat64())}})
			case 2:
				m.Body = append(m.Body, Call{Callee: IntrShiftPhase, Args: []Arg{
					port, F64Arg(rng.NormFloat64())}})
			case 3:
				m.Body = append(m.Body, Call{Callee: IntrDelay, Args: []Arg{
					port, I64Arg(int64(rng.Intn(1000)))}})
			case 4:
				m.Body = append(m.Body, Call{Callee: IntrBarrier, Args: []Arg{port}})
			case 5:
				m.Body = append(m.Body, Call{Callee: IntrMz, Args: []Arg{
					QubitArg(int64(rng.Intn(m.NumQubits))),
					ResultArg(int64(rng.Intn(m.NumResults)))}})
			}
		}
		if err := m.Verify(); err != nil {
			t.Fatalf("trial %d: generated invalid module: %v", trial, err)
		}
		text := m.Emit()
		back, err := ParseModule(text)
		if err != nil {
			t.Fatalf("trial %d: parse: %v", trial, err)
		}
		if back.Emit() != text {
			t.Fatalf("trial %d: roundtrip unstable", trial)
		}
	}
}
