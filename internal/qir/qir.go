// Package qir implements the exchange format of the stack: an LLVM-flavored
// Quantum Intermediate Representation module with the paper's proposed
// Pulse Profile (Section 5.4, Listing 3). Pulse operations appear as calls
// to declared-but-undefined __quantum__pulse__* intrinsics on opaque %Port,
// %Waveform, and %Frame types; gate-level QIS calls coexist in the same
// module. A linker binds intrinsic call sites to device runtime
// implementations, mirroring how "a QIR job becomes an executable
// intermediate object".
package qir

import (
	"errors"
	"fmt"
)

// Profile names (the QIR spec's qir_profiles attribute values).
const (
	ProfileBase  = "base"
	ProfilePulse = "pulse"
)

// Intrinsic callee names. Pulse intrinsics follow the paper's
// __quantum__pulse__*__body convention; gate intrinsics use the standard
// QIS names.
const (
	IntrWaveform       = "__quantum__pulse__waveform__body"
	IntrPlay           = "__quantum__pulse__waveform_play__body"
	IntrFrameChange    = "__quantum__pulse__frame_change__body"
	IntrShiftPhase     = "__quantum__pulse__shift_phase__body"
	IntrSetPhase       = "__quantum__pulse__set_phase__body"
	IntrShiftFrequency = "__quantum__pulse__shift_frequency__body"
	IntrSetFrequency   = "__quantum__pulse__set_frequency__body"
	IntrDelay          = "__quantum__pulse__delay__body"
	IntrBarrier        = "__quantum__pulse__barrier__body"
	IntrCapture        = "__quantum__pulse__capture__body"

	IntrX     = "__quantum__qis__x__body"
	IntrY     = "__quantum__qis__y__body"
	IntrZ     = "__quantum__qis__z__body"
	IntrH     = "__quantum__qis__h__body"
	IntrS     = "__quantum__qis__s__body"
	IntrT     = "__quantum__qis__t__body"
	IntrSX    = "__quantum__qis__sx__body"
	IntrRX    = "__quantum__qis__rx__body"
	IntrRY    = "__quantum__qis__ry__body"
	IntrRZ    = "__quantum__qis__rz__body"
	IntrCZ    = "__quantum__qis__cz__body"
	IntrCX    = "__quantum__qis__cnot__body"
	IntrISwap = "__quantum__qis__iswap__body"
	IntrMz    = "__quantum__qis__mz__body"
)

// GateIntrinsics maps QPI gate names to QIS intrinsic callees.
var GateIntrinsics = map[string]string{
	"x": IntrX, "y": IntrY, "z": IntrZ, "h": IntrH, "s": IntrS, "t": IntrT,
	"sx": IntrSX, "rx": IntrRX, "ry": IntrRY, "rz": IntrRZ,
	"cz": IntrCZ, "cx": IntrCX, "iswap": IntrISwap,
}

// PulseIntrinsics lists every pulse-profile intrinsic.
var PulseIntrinsics = []string{
	IntrWaveform, IntrPlay, IntrFrameChange, IntrShiftPhase, IntrSetPhase,
	IntrShiftFrequency, IntrSetFrequency, IntrDelay, IntrBarrier, IntrCapture,
}

// ArgKind classifies call arguments.
type ArgKind int

// Argument kinds.
const (
	ArgQubit    ArgKind = iota // %Qubit* inttoptr handle
	ArgResult                  // %Result* inttoptr handle
	ArgPort                    // %Port* inttoptr handle
	ArgWaveform                // %Waveform* global symbol reference
	ArgF64                     // double literal
	ArgI64                     // i64 literal
)

// String implements fmt.Stringer.
func (k ArgKind) String() string {
	switch k {
	case ArgQubit:
		return "qubit"
	case ArgResult:
		return "result"
	case ArgPort:
		return "port"
	case ArgWaveform:
		return "waveform"
	case ArgF64:
		return "f64"
	case ArgI64:
		return "i64"
	default:
		return fmt.Sprintf("ArgKind(%d)", int(k))
	}
}

// Arg is one call argument.
type Arg struct {
	Kind ArgKind
	I    int64   // handle index or i64 literal
	F    float64 // f64 literal
	Sym  string  // waveform symbol
	// Expr, when non-nil, marks the argument as an unbound template slot of
	// the declared Kind (ArgF64 or ArgI64 only); Bind evaluates it. The
	// literal fields are placeholders until then.
	Expr *ParamExpr
}

// QubitArg makes a qubit handle argument.
func QubitArg(i int64) Arg { return Arg{Kind: ArgQubit, I: i} }

// ResultArg makes a result handle argument.
func ResultArg(i int64) Arg { return Arg{Kind: ArgResult, I: i} }

// PortArg makes a port handle argument.
func PortArg(i int64) Arg { return Arg{Kind: ArgPort, I: i} }

// WaveformArg references a module-level waveform constant.
func WaveformArg(sym string) Arg { return Arg{Kind: ArgWaveform, Sym: sym} }

// F64Arg makes a double literal.
func F64Arg(v float64) Arg { return Arg{Kind: ArgF64, F: v} }

// I64Arg makes an i64 literal.
func I64Arg(v int64) Arg { return Arg{Kind: ArgI64, I: v} }

// Call is one instruction in the (straight-line) entry function body.
type Call struct {
	Callee string
	Args   []Arg
}

// WaveformConst is a module-level waveform constant: interleaved I/Q sample
// data, the linkable analogue of an AWG memory upload.
type WaveformConst struct {
	Name    string
	Samples []complex128
	// AmpExpr, when non-nil, marks the constant as an unbound template
	// slot: Samples hold the base envelope, multiplied by the expression's
	// bound value at bind time.
	AmpExpr *ParamExpr
}

// Module is a QIR module specialized to the Base-Profile shape (one entry
// point, straight-line body) plus the Pulse Profile extensions.
type Module struct {
	ID        string
	Profile   string // ProfileBase or ProfilePulse
	EntryName string
	// Required resource counts (attribute group values).
	NumQubits  int
	NumResults int
	NumPorts   int
	// PortNames maps port handle indices to vendor port IDs (module
	// metadata, the pulse analogue of output labeling).
	PortNames []string
	Waveforms []WaveformConst
	Body      []Call
}

// FindWaveform returns the named waveform constant.
func (m *Module) FindWaveform(name string) (*WaveformConst, bool) {
	for i := range m.Waveforms {
		if m.Waveforms[i].Name == name {
			return &m.Waveforms[i], true
		}
	}
	return nil, false
}

// UsesPulse reports whether any pulse intrinsic is called.
func (m *Module) UsesPulse() bool {
	for _, c := range m.Body {
		for _, p := range PulseIntrinsics {
			if c.Callee == p {
				return true
			}
		}
	}
	return false
}

// intrinsicSig describes an intrinsic's expected argument kinds.
// ArgKind(-1) marks a variadic tail of ports (barrier).
var intrinsicSigs = map[string][]ArgKind{
	IntrWaveform: {ArgWaveform}, // upload/bind a waveform constant

	IntrPlay:           {ArgPort, ArgWaveform},
	IntrFrameChange:    {ArgPort, ArgF64, ArgF64},
	IntrShiftPhase:     {ArgPort, ArgF64},
	IntrSetPhase:       {ArgPort, ArgF64},
	IntrShiftFrequency: {ArgPort, ArgF64},
	IntrSetFrequency:   {ArgPort, ArgF64},
	IntrDelay:          {ArgPort, ArgI64},
	IntrBarrier:        nil, // variadic ports
	IntrCapture:        {ArgPort, ArgResult, ArgI64},
	IntrX:              {ArgQubit},
	IntrY:              {ArgQubit},
	IntrZ:              {ArgQubit},
	IntrH:              {ArgQubit},
	IntrS:              {ArgQubit},
	IntrT:              {ArgQubit},
	IntrSX:             {ArgQubit},
	IntrRX:             {ArgF64, ArgQubit},
	IntrRY:             {ArgF64, ArgQubit},
	IntrRZ:             {ArgF64, ArgQubit},
	IntrCZ:             {ArgQubit, ArgQubit},
	IntrCX:             {ArgQubit, ArgQubit},
	IntrISwap:          {ArgQubit, ArgQubit},
	IntrMz:             {ArgQubit, ArgResult},
}

// Verify checks profile conformance: declared resource counts cover every
// handle used, waveform references resolve, intrinsics and signatures are
// known, and pulse intrinsics only appear under the Pulse Profile.
func (m *Module) Verify() error {
	if m.EntryName == "" {
		return errors.New("qir: module has no entry point")
	}
	switch m.Profile {
	case ProfileBase, ProfilePulse:
	default:
		return fmt.Errorf("qir: unknown profile %q", m.Profile)
	}
	if m.UsesPulse() && m.Profile != ProfilePulse {
		return fmt.Errorf("qir: pulse intrinsics used under profile %q", m.Profile)
	}
	if len(m.PortNames) != m.NumPorts {
		return fmt.Errorf("qir: %d port names for required_num_ports=%d", len(m.PortNames), m.NumPorts)
	}
	seen := map[string]bool{}
	for _, w := range m.Waveforms {
		if w.Name == "" {
			return errors.New("qir: waveform constant with empty name")
		}
		if seen[w.Name] {
			return fmt.Errorf("qir: duplicate waveform constant @%s", w.Name)
		}
		if len(w.Samples) == 0 {
			return fmt.Errorf("qir: waveform constant @%s has no samples", w.Name)
		}
		seen[w.Name] = true
	}
	for ci, c := range m.Body {
		sig, known := intrinsicSigs[c.Callee]
		if !known {
			return fmt.Errorf("qir: call %d to unknown intrinsic %s", ci, c.Callee)
		}
		if c.Callee == IntrBarrier {
			for _, a := range c.Args {
				if a.Kind != ArgPort {
					return fmt.Errorf("qir: call %d: barrier arg must be port", ci)
				}
			}
		} else {
			if len(c.Args) != len(sig) {
				return fmt.Errorf("qir: call %d to %s: %d args, want %d", ci, c.Callee, len(c.Args), len(sig))
			}
			for ai, a := range c.Args {
				if a.Kind != sig[ai] {
					return fmt.Errorf("qir: call %d to %s: arg %d is %s, want %s",
						ci, c.Callee, ai, a.Kind, sig[ai])
				}
			}
		}
		for ai, a := range c.Args {
			switch a.Kind {
			case ArgQubit:
				if a.I < 0 || a.I >= int64(m.NumQubits) {
					return fmt.Errorf("qir: call %d arg %d: qubit %d outside required_num_qubits=%d",
						ci, ai, a.I, m.NumQubits)
				}
			case ArgResult:
				if a.I < 0 || a.I >= int64(m.NumResults) {
					return fmt.Errorf("qir: call %d arg %d: result %d outside required_num_results=%d",
						ci, ai, a.I, m.NumResults)
				}
			case ArgPort:
				if a.I < 0 || a.I >= int64(m.NumPorts) {
					return fmt.Errorf("qir: call %d arg %d: port %d outside required_num_ports=%d",
						ci, ai, a.I, m.NumPorts)
				}
			case ArgWaveform:
				if _, ok := m.FindWaveform(a.Sym); !ok {
					return fmt.Errorf("qir: call %d arg %d: undefined waveform @%s", ci, ai, a.Sym)
				}
			}
		}
	}
	return nil
}
