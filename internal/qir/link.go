package qir

import (
	"fmt"

	"mqsspulse/internal/pulse"
	"mqsspulse/internal/waveform"
)

// DeviceBinding is what a QDMI device supplies at link time: the hardware
// port table, carrier frames, and calibration callbacks that resolve the
// module's declared-but-undefined intrinsics — the paper's "hardware-
// specific QDMI Device layer links these calls to the actual device APIs".
type DeviceBinding struct {
	// Ports maps QIR port handle indices to hardware ports.
	Ports []*pulse.Port
	// FrameFor returns the initial carrier frame for a port (fresh clone
	// per link so schedules do not share state).
	FrameFor func(portID string) (*pulse.Frame, error)
	// LowerGate appends the calibrated pulse implementation of a gate-level
	// QIS call onto the schedule. Nil means gate payloads are rejected.
	LowerGate func(s *pulse.Schedule, gate string, params []float64, qubits []int64) error
	// LowerMeasure appends the calibrated readout of qubit q into classical
	// bit r. Nil means measurement calls are rejected.
	LowerMeasure func(s *pulse.Schedule, qubit, result int64) error
}

// BuildSchedule links a verified pulse-profile module against a device
// binding, producing an executable pulse schedule. Pulse intrinsics map
// 1:1 onto schedule instructions; gate intrinsics go through the device's
// calibration callbacks.
func BuildSchedule(m *Module, b *DeviceBinding) (*pulse.Schedule, error) {
	if err := m.Verify(); err != nil {
		return nil, err
	}
	if len(b.Ports) < m.NumPorts {
		return nil, fmt.Errorf("qir: device provides %d ports, module requires %d", len(b.Ports), m.NumPorts)
	}
	s := pulse.NewSchedule()
	frameOf := map[string]string{} // portID → frameID
	for _, p := range b.Ports {
		cp := *p
		cp.Sites = append([]int(nil), p.Sites...)
		if err := s.AddPort(&cp); err != nil {
			return nil, err
		}
		f, err := b.FrameFor(p.ID)
		if err != nil {
			return nil, fmt.Errorf("qir: no frame for port %s: %w", p.ID, err)
		}
		if err := s.AddFrame(f); err != nil {
			return nil, err
		}
		frameOf[p.ID] = f.ID
	}
	portID := func(i int64) string { return b.Ports[i].ID }

	for ci, c := range m.Body {
		var err error
		switch c.Callee {
		case IntrWaveform:
			// Upload hint; waveform constants are already module-resident.
		case IntrPlay:
			wc, _ := m.FindWaveform(c.Args[1].Sym)
			var w *waveform.Waveform
			w, err = waveform.New(wc.Name, wc.Samples)
			if err == nil {
				pid := portID(c.Args[0].I)
				err = s.Append(&pulse.Play{Port: pid, Frame: frameOf[pid], Waveform: w})
			}
		case IntrFrameChange:
			pid := portID(c.Args[0].I)
			err = s.Append(&pulse.FrameChange{Port: pid, Frame: frameOf[pid],
				Hz: c.Args[1].F, Phase: c.Args[2].F})
		case IntrShiftPhase:
			pid := portID(c.Args[0].I)
			err = s.Append(&pulse.ShiftPhase{Port: pid, Frame: frameOf[pid], Phase: c.Args[1].F})
		case IntrSetPhase:
			pid := portID(c.Args[0].I)
			err = s.Append(&pulse.SetPhase{Port: pid, Frame: frameOf[pid], Phase: c.Args[1].F})
		case IntrShiftFrequency:
			pid := portID(c.Args[0].I)
			err = s.Append(&pulse.ShiftFrequency{Port: pid, Frame: frameOf[pid], Hz: c.Args[1].F})
		case IntrSetFrequency:
			pid := portID(c.Args[0].I)
			err = s.Append(&pulse.SetFrequency{Port: pid, Frame: frameOf[pid], Hz: c.Args[1].F})
		case IntrDelay:
			err = s.Append(&pulse.Delay{Port: portID(c.Args[0].I), Samples: c.Args[1].I})
		case IntrBarrier:
			ids := make([]string, len(c.Args))
			for i, a := range c.Args {
				ids[i] = portID(a.I)
			}
			err = s.Append(&pulse.Barrier{Ports: ids})
		case IntrCapture:
			pid := portID(c.Args[0].I)
			err = s.Append(&pulse.Capture{Port: pid, Frame: frameOf[pid],
				Bit: int(c.Args[1].I), DurationSamples: c.Args[2].I})
		case IntrMz:
			if b.LowerMeasure == nil {
				return nil, fmt.Errorf("qir: call %d: device cannot lower measurements", ci)
			}
			err = b.LowerMeasure(s, c.Args[0].I, c.Args[1].I)
		default:
			// Gate-level QIS intrinsic.
			gate, params, qubits := decodeGateCall(c)
			if gate == "" {
				return nil, fmt.Errorf("qir: call %d: unsupported intrinsic %s", ci, c.Callee)
			}
			if b.LowerGate == nil {
				return nil, fmt.Errorf("qir: call %d: device cannot lower gate %s", ci, gate)
			}
			err = b.LowerGate(s, gate, params, qubits)
		}
		if err != nil {
			return nil, fmt.Errorf("qir: call %d (%s): %w", ci, c.Callee, err)
		}
	}
	return s, nil
}

// decodeGateCall maps a QIS call back to (gate, params, qubits).
func decodeGateCall(c Call) (string, []float64, []int64) {
	var gate string
	for g, callee := range GateIntrinsics {
		if callee == c.Callee {
			gate = g
			break
		}
	}
	if gate == "" {
		return "", nil, nil
	}
	var params []float64
	var qubits []int64
	for _, a := range c.Args {
		switch a.Kind {
		case ArgF64:
			params = append(params, a.F)
		case ArgQubit:
			qubits = append(qubits, a.I)
		}
	}
	return gate, params, qubits
}
