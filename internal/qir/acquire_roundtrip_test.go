package qir

import (
	"reflect"
	"testing"
)

// TestAcquisitionPayloadRoundTrip pins the wire form of the acquisition
// primitive: a pulse-profile module whose body opens explicit capture
// windows must survive Emit → ParseModule exactly — callee, port/result
// handles, and window lengths included — since devices parse this payload
// to schedule their digitizers.
func TestAcquisitionPayloadRoundTrip(t *testing.T) {
	m := &Module{
		ID: "acq", Profile: ProfilePulse, EntryName: "acq",
		NumQubits: 0, NumResults: 2, NumPorts: 3,
		PortNames: []string{"q0-drive", "q0-readout", "q1-readout"},
		Waveforms: []WaveformConst{
			{Name: "stim", Samples: []complex128{complex(0.25, 0.1), complex(-0.5, 0), 0.125}},
		},
		Body: []Call{
			{Callee: IntrPlay, Args: []Arg{PortArg(0), WaveformArg("stim")}},
			{Callee: IntrBarrier, Args: []Arg{PortArg(0), PortArg(1), PortArg(2)}},
			{Callee: IntrCapture, Args: []Arg{PortArg(1), ResultArg(0), I64Arg(96)}},
			{Callee: IntrCapture, Args: []Arg{PortArg(2), ResultArg(1), I64Arg(4000)}},
		},
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("seed module invalid: %v", err)
	}
	parsed, err := ParseModule(m.Emit())
	if err != nil {
		t.Fatalf("ParseModule: %v", err)
	}
	if err := parsed.Verify(); err != nil {
		t.Fatalf("parsed module invalid: %v", err)
	}
	if !reflect.DeepEqual(parsed.Body, m.Body) {
		t.Fatalf("body changed in round trip:\nwant %+v\ngot  %+v", m.Body, parsed.Body)
	}
	if !reflect.DeepEqual(parsed.PortNames, m.PortNames) {
		t.Fatalf("port names changed: want %v got %v", m.PortNames, parsed.PortNames)
	}
	if !reflect.DeepEqual(parsed.Waveforms, m.Waveforms) {
		t.Fatalf("waveform constants changed")
	}
	if parsed.NumResults != 2 || parsed.NumPorts != 3 || parsed.Profile != ProfilePulse {
		t.Fatalf("attributes changed: %+v", parsed)
	}
	// The capture windows specifically must be preserved verbatim.
	var windows []int64
	for _, c := range parsed.Body {
		if c.Callee == IntrCapture {
			windows = append(windows, c.Args[2].I)
		}
	}
	if len(windows) != 2 || windows[0] != 96 || windows[1] != 4000 {
		t.Fatalf("capture windows changed: %v", windows)
	}
}
