package qir

import "testing"

// FuzzParseModule exercises the textual QIR parser with arbitrary input:
// whatever it accepts must survive an Emit → ParseModule round trip with
// its structural fields intact.
func FuzzParseModule(f *testing.F) {
	valid := &Module{
		ID: "seed", Profile: ProfilePulse, EntryName: "main",
		NumQubits: 1, NumResults: 1, NumPorts: 2,
		PortNames: []string{"q0-drive", "q0-readout"},
		Waveforms: []WaveformConst{{Name: "wf", Samples: []complex128{0.5, complex(0.1, -0.2)}}},
		Body: []Call{
			{Callee: IntrPlay, Args: []Arg{PortArg(0), WaveformArg("wf")}},
			{Callee: IntrBarrier, Args: []Arg{PortArg(0), PortArg(1)}},
			{Callee: IntrCapture, Args: []Arg{PortArg(1), ResultArg(0), I64Arg(96)}},
		},
	}
	f.Add(valid.Emit())
	f.Add("define void @empty() #0 {\nentry:\n  ret void\n}\n")
	f.Add("; ModuleID = 'x'\n@w = private constant [2 x double] [double 1, double 0]\ndefine void @m() {\nentry:\n}\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ParseModule(src)
		if err != nil {
			return
		}
		again, err := ParseModule(m.Emit())
		if err != nil {
			t.Fatalf("re-parse of emitted module failed: %v\nemitted:\n%s", err, m.Emit())
		}
		if again.EntryName != m.EntryName || again.Profile != m.Profile ||
			again.NumQubits != m.NumQubits || again.NumResults != m.NumResults ||
			again.NumPorts != m.NumPorts ||
			len(again.Body) != len(m.Body) || len(again.Waveforms) != len(m.Waveforms) ||
			len(again.PortNames) != len(m.PortNames) {
			t.Fatalf("round trip changed module structure:\nfirst:  %+v\nsecond: %+v", m, again)
		}
	})
}
