package qir

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"
)

// ParamExpr is an affine symbolic expression over one named template
// parameter: value = Scale·p + Offset. A QIR module carrying expressions is
// a parametric payload — the compile-once artifact of the template
// subsystem. Bind substitutes concrete values without touching the
// compiler, so a parameter sweep pays one compilation and N cheap binds.
type ParamExpr struct {
	// Param is the template parameter name.
	Param string
	// Scale multiplies the bound parameter value.
	Scale float64
	// Offset is added after scaling.
	Offset float64
}

// Eval evaluates the expression at parameter value p.
func (e *ParamExpr) Eval(p float64) float64 { return e.Scale*p + e.Offset }

// IsParametric reports whether the module carries any unbound slot.
func (m *Module) IsParametric() bool {
	for i := range m.Waveforms {
		if m.Waveforms[i].AmpExpr != nil {
			return true
		}
	}
	for _, c := range m.Body {
		for _, a := range c.Args {
			if a.Expr != nil {
				return true
			}
		}
	}
	return false
}

// ParamNames returns the sorted, de-duplicated parameter names the module's
// unbound slots reference.
func (m *Module) ParamNames() []string {
	seen := map[string]bool{}
	for i := range m.Waveforms {
		if e := m.Waveforms[i].AmpExpr; e != nil {
			seen[e.Param] = true
		}
	}
	for _, c := range m.Body {
		for _, a := range c.Args {
			if a.Expr != nil {
				seen[a.Expr.Param] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// evalExpr evaluates an expression against a binding map, rejecting missing
// parameters and non-finite results.
func evalExpr(e *ParamExpr, vals map[string]float64) (float64, error) {
	p, ok := vals[e.Param]
	if !ok {
		return 0, fmt.Errorf("qir: bind: no value for parameter %q", e.Param)
	}
	v := e.Eval(p)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("qir: bind: parameter %q binds %g to non-finite %g", e.Param, p, v)
	}
	return v, nil
}

// Bind substitutes concrete parameter values into every unbound slot and
// returns a fully concrete module ready to emit or execute. The receiver is
// not modified; unchanged waveforms and calls are shared, not copied. Bound
// waveform samples are range-checked (|sample| ≤ full scale), and bound
// delay counts must round to a non-negative integer.
func (m *Module) Bind(vals map[string]float64) (*Module, error) {
	out := *m
	out.Waveforms = make([]WaveformConst, len(m.Waveforms))
	for i := range m.Waveforms {
		w := m.Waveforms[i]
		if w.AmpExpr == nil {
			out.Waveforms[i] = w
			continue
		}
		v, err := evalExpr(w.AmpExpr, vals)
		if err != nil {
			return nil, fmt.Errorf("qir: bind waveform @%s: %w", w.Name, err)
		}
		s := complex(v, 0)
		samples := make([]complex128, len(w.Samples))
		for j, x := range w.Samples {
			samples[j] = s * x
		}
		for j, x := range samples {
			if a := cmplx.Abs(x); math.IsNaN(a) || a > 1.0+1e-12 {
				return nil, fmt.Errorf("qir: bind waveform @%s: sample %d has magnitude %g", w.Name, j, a)
			}
		}
		out.Waveforms[i] = WaveformConst{Name: w.Name, Samples: samples}
	}
	out.Body = make([]Call, len(m.Body))
	for ci, c := range m.Body {
		bound := false
		for _, a := range c.Args {
			if a.Expr != nil {
				bound = true
				break
			}
		}
		if !bound {
			out.Body[ci] = c
			continue
		}
		args := make([]Arg, len(c.Args))
		copy(args, c.Args)
		for ai := range args {
			e := args[ai].Expr
			if e == nil {
				continue
			}
			v, err := evalExpr(e, vals)
			if err != nil {
				return nil, fmt.Errorf("qir: bind call %d (%s) arg %d: %w", ci, c.Callee, ai, err)
			}
			switch args[ai].Kind {
			case ArgF64:
				args[ai] = F64Arg(v)
			case ArgI64:
				r := math.Round(v)
				if r < 0 {
					return nil, fmt.Errorf("qir: bind call %d (%s) arg %d: %g rounds to a negative count",
						ci, c.Callee, ai, v)
				}
				args[ai] = I64Arg(int64(r))
			default:
				return nil, fmt.Errorf("qir: bind call %d (%s) arg %d: %s args cannot carry expressions",
					ci, c.Callee, ai, args[ai].Kind)
			}
		}
		out.Body[ci] = Call{Callee: c.Callee, Args: args}
	}
	return &out, nil
}
