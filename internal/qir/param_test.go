package qir

import (
	"math"
	"testing"
)

func parametricModule() *Module {
	return &Module{
		ID: "tpl", Profile: ProfilePulse, EntryName: "main",
		NumQubits: 1, NumResults: 1, NumPorts: 1,
		PortNames: []string{"q0-drive"},
		Waveforms: []WaveformConst{
			{Name: "env", Samples: []complex128{0.25, 0.5, 0.25},
				AmpExpr: &ParamExpr{Param: "amp", Scale: 1}},
			{Name: "fixed", Samples: []complex128{0.1}},
		},
		Body: []Call{
			{Callee: IntrShiftPhase, Args: []Arg{
				PortArg(0),
				{Kind: ArgF64, Expr: &ParamExpr{Param: "phi", Scale: 2, Offset: 0.5}},
			}},
			{Callee: IntrDelay, Args: []Arg{
				PortArg(0),
				{Kind: ArgI64, Expr: &ParamExpr{Param: "dt", Scale: 1}},
			}},
		},
	}
}

func TestModuleParametricIntrospection(t *testing.T) {
	m := parametricModule()
	if !m.IsParametric() {
		t.Fatal("module with unbound slots reports concrete")
	}
	names := m.ParamNames()
	want := []string{"amp", "dt", "phi"}
	if len(names) != len(want) {
		t.Fatalf("ParamNames = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("ParamNames = %v, want %v", names, want)
		}
	}
}

func TestBindSubstitutesEverySlot(t *testing.T) {
	m := parametricModule()
	bound, err := m.Bind(map[string]float64{"amp": 0.5, "phi": 1.0, "dt": 16.2})
	if err != nil {
		t.Fatal(err)
	}
	if bound.IsParametric() {
		t.Fatalf("unbound slots survived: %v", bound.ParamNames())
	}
	// The receiver must stay untouched (templates are bound many times).
	if !m.IsParametric() {
		t.Fatal("Bind mutated the template module")
	}
	if got := bound.Waveforms[0].Samples[1]; got != 0.25 {
		t.Fatalf("scaled sample = %v, want 0.25", got)
	}
	if got := bound.Waveforms[1].Samples[0]; got != 0.1 {
		t.Fatalf("concrete waveform disturbed: %v", got)
	}
	// phi binds through the affine map 2·1.0 + 0.5.
	if got := bound.Body[0].Args[1]; got.Kind != ArgF64 || got.F != 2.5 || got.Expr != nil {
		t.Fatalf("bound f64 arg = %+v", got)
	}
	// dt rounds to the nearest integer sample count.
	if got := bound.Body[1].Args[1]; got.Kind != ArgI64 || got.I != 16 || got.Expr != nil {
		t.Fatalf("bound i64 arg = %+v", got)
	}
	if err := bound.Verify(); err != nil {
		t.Fatalf("bound module fails verification: %v", err)
	}
}

func TestBindRejections(t *testing.T) {
	m := parametricModule()
	cases := []struct {
		name string
		vals map[string]float64
	}{
		{"missing parameter", map[string]float64{"amp": 0.5, "phi": 1}},
		{"non-finite result", map[string]float64{"amp": 0.5, "phi": math.Inf(1), "dt": 1}},
		{"overdriven waveform", map[string]float64{"amp": 3, "phi": 1, "dt": 1}},
		{"negative delay", map[string]float64{"amp": 0.5, "phi": 1, "dt": -4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := m.Bind(tc.vals); err == nil {
				t.Fatalf("Bind(%v) succeeded", tc.vals)
			}
		})
	}
}

// TestEmitRefusesUnboundSlots: emitting a parametric module produces
// tokens that cannot parse, so a missed Bind fails loudly downstream.
func TestEmitRefusesUnboundSlots(t *testing.T) {
	text := parametricModule().Emit()
	if _, err := ParseModule(text); err == nil {
		t.Fatal("emitted parametric module parsed cleanly")
	}
}
