package qdmi

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"mqsspulse/internal/pulse"
	"mqsspulse/internal/waveform"
)

// mockDevice is a minimal in-memory Device for interface-level tests.
type mockDevice struct {
	name    string
	mu      sync.Mutex
	impls   map[string]*PulseImpl
	nextJob int
}

func newMockDevice(name string) *mockDevice {
	return &mockDevice{name: name, impls: map[string]*PulseImpl{}}
}

func (m *mockDevice) Name() string { return m.name }

func (m *mockDevice) QueryDeviceProperty(p DeviceProperty) (any, error) {
	switch p {
	case DevicePropName:
		return m.name, nil
	case DevicePropVersion:
		return "1.0-mock", nil
	case DevicePropTechnology:
		return "simulator", nil
	case DevicePropNumSites:
		return 2, nil
	case DevicePropSampleRateHz:
		return 1e9, nil
	case DevicePropPulseSupport:
		return PulsePortLevel, nil
	case DevicePropWaveformKinds:
		return waveform.Kinds(), nil
	case DevicePropNativeGates:
		return []string{"x", "sx", "rz", "cz"}, nil
	case DevicePropProgramFormats:
		return []ProgramFormat{FormatQIRBase, FormatQIRPulse}, nil
	default:
		return nil, ErrNotSupported
	}
}

func (m *mockDevice) NumSites() int { return 2 }

func (m *mockDevice) QuerySiteProperty(site int, p SiteProperty) (any, error) {
	if site < 0 || site >= 2 {
		return nil, ErrInvalidArgument
	}
	switch p {
	case SitePropFrequencyHz:
		return 5.0e9 + float64(site)*0.2e9, nil
	case SitePropT1Seconds:
		return 50e-6, nil
	case SitePropT2Seconds:
		return 30e-6, nil
	case SitePropConnectivity:
		return []int{1 - site}, nil
	default:
		return nil, ErrNotSupported
	}
}

func (m *mockDevice) Operations() []string { return []string{"x", "sx", "rz", "cz", "measure"} }

func (m *mockDevice) QueryOperationProperty(op string, sites []int, p OperationProperty) (any, error) {
	switch p {
	case OpPropFidelity:
		return 0.999, nil
	case OpPropDurationSeconds:
		return 50e-9, nil
	case OpPropHasPulseImpl:
		m.mu.Lock()
		defer m.mu.Unlock()
		_, ok := m.impls[implKey(op, sites)]
		return ok, nil
	default:
		return nil, ErrNotSupported
	}
}

func (m *mockDevice) Ports() []*pulse.Port {
	return []*pulse.Port{
		{ID: "q0-drive", Kind: pulse.PortDrive, Sites: []int{0}, SampleRateHz: 1e9, MaxAmplitude: 1},
		{ID: "q1-drive", Kind: pulse.PortDrive, Sites: []int{1}, SampleRateHz: 1e9, MaxAmplitude: 1},
	}
}

func (m *mockDevice) QueryPortProperty(portID string, p PortProperty) (any, error) {
	for _, port := range m.Ports() {
		if port.ID == portID {
			switch p {
			case PortPropKind:
				return port.Kind, nil
			case PortPropSampleRateHz:
				return port.SampleRateHz, nil
			default:
				return nil, ErrNotSupported
			}
		}
	}
	return nil, ErrInvalidArgument
}

func implKey(op string, sites []int) string { return fmt.Sprintf("%s@%v", op, sites) }

func (m *mockDevice) DefaultPulse(op string, sites []int) (*PulseImpl, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	impl, ok := m.impls[implKey(op, sites)]
	if !ok {
		return nil, ErrNotSupported
	}
	return impl, nil
}

func (m *mockDevice) SetPulseImpl(op string, sites []int, impl *PulseImpl) error {
	if err := impl.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.impls[implKey(op, sites)] = impl
	return nil
}

func (m *mockDevice) SubmitJob(payload []byte, format ProgramFormat, shots int) (Job, error) {
	if !SupportsFormat(m, format) {
		return nil, fmt.Errorf("%w: format %s", ErrNotSupported, format)
	}
	m.mu.Lock()
	m.nextJob++
	id := fmt.Sprintf("%s-job-%d", m.name, m.nextJob)
	m.mu.Unlock()
	j := NewAsyncJob(id)
	go func() {
		if !j.Start() {
			return
		}
		if strings.Contains(string(payload), "poison") {
			j.Fail(errors.New("poisoned payload"))
			return
		}
		j.Finish(&Result{Counts: map[uint64]int{0: shots}, Shots: shots})
	}()
	return j, nil
}

func TestDriverRegistry(t *testing.T) {
	d := NewDriver()
	if err := d.RegisterDevice(newMockDevice("sim-a")); err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterDevice(newMockDevice("sim-b")); err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterDevice(newMockDevice("sim-a")); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := d.RegisterDevice(newMockDevice("")); err == nil {
		t.Fatal("empty name accepted")
	}
	ses := d.OpenSession()
	names, err := ses.Devices()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "sim-a" || names[1] != "sim-b" {
		t.Fatalf("devices = %v", names)
	}
	if err := d.UnregisterDevice("sim-b"); err != nil {
		t.Fatal(err)
	}
	if err := d.UnregisterDevice("sim-b"); err == nil {
		t.Fatal("double unregister accepted")
	}
}

func TestSessionLifecycle(t *testing.T) {
	d := NewDriver()
	_ = d.RegisterDevice(newMockDevice("sim"))
	ses := d.OpenSession()
	if ses.ID() == 0 {
		t.Fatal("session ID not assigned")
	}
	dev, err := ses.Device("sim")
	if err != nil {
		t.Fatal(err)
	}
	if dev.Name() != "sim" {
		t.Fatal("wrong device")
	}
	if _, err := ses.Device("ghost"); err == nil {
		t.Fatal("ghost device resolved")
	}
	ses.Close()
	if _, err := ses.Devices(); err == nil {
		t.Fatal("closed session still lists devices")
	}
	if _, err := ses.Device("sim"); err == nil {
		t.Fatal("closed session still resolves devices")
	}
}

func TestTypedQueryHelpers(t *testing.T) {
	dev := newMockDevice("sim")
	name, err := QueryString(dev, DevicePropName)
	if err != nil || name != "sim" {
		t.Fatalf("QueryString: %v %q", err, name)
	}
	n, err := QueryInt(dev, DevicePropNumSites)
	if err != nil || n != 2 {
		t.Fatalf("QueryInt: %v %d", err, n)
	}
	f, err := QueryFloat(dev, DevicePropSampleRateHz)
	if err != nil || f != 1e9 {
		t.Fatalf("QueryFloat: %v %g", err, f)
	}
	ps, err := QueryPulseSupport(dev)
	if err != nil || ps != PulsePortLevel {
		t.Fatalf("QueryPulseSupport: %v %v", err, ps)
	}
	// Type mismatches.
	if _, err := QueryString(dev, DevicePropNumSites); err == nil {
		t.Fatal("type mismatch accepted")
	}
	if _, err := QueryInt(dev, DevicePropName); err == nil {
		t.Fatal("type mismatch accepted")
	}
	if _, err := QueryFloat(dev, DevicePropName); err == nil {
		t.Fatal("type mismatch accepted")
	}
	// Unsupported property.
	if _, err := dev.QueryDeviceProperty(DevicePropMaxWaveformMemory); !errors.Is(err, ErrNotSupported) {
		t.Fatalf("want ErrNotSupported, got %v", err)
	}
}

func TestSupportsFormat(t *testing.T) {
	dev := newMockDevice("sim")
	if !SupportsFormat(dev, FormatQIRPulse) {
		t.Fatal("qir-pulse should be supported")
	}
	if SupportsFormat(dev, FormatMLIRPulse) {
		t.Fatal("mlir-pulse should not be supported")
	}
}

func TestPulseImplValidate(t *testing.T) {
	spec := waveform.SpecFromEnvelope("w", waveform.Gaussian{Amplitude: 0.5, SigmaFrac: 0.2}, 32)
	good := &PulseImpl{Operation: "x", Steps: []PulseStep{
		{Kind: "play", PortRole: "drive0", Waveform: &spec},
		{Kind: "shift_phase", PortRole: "drive0", PhaseRad: 0.5},
		{Kind: "barrier"},
		{Kind: "delay", PortRole: "drive0", Samples: 16},
	}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []*PulseImpl{
		{Operation: "", Steps: good.Steps},
		{Operation: "x"},
		{Operation: "x", Steps: []PulseStep{{Kind: "play", PortRole: "d"}}},
		{Operation: "x", Steps: []PulseStep{{Kind: "warp", PortRole: "d"}}},
		{Operation: "x", Steps: []PulseStep{{Kind: "delay", PortRole: "d", Samples: 0}}},
		{Operation: "x", Steps: []PulseStep{{Kind: "shift_phase"}}},
	}
	for i, b := range bads {
		if err := b.Validate(); err == nil {
			t.Errorf("bad impl %d accepted", i)
		}
	}
}

func TestSetAndQueryPulseImpl(t *testing.T) {
	dev := newMockDevice("sim")
	spec := waveform.SpecFromEnvelope("w", waveform.DRAG{Amplitude: 0.4, SigmaFrac: 0.2, Beta: 0.8}, 40)
	impl := &PulseImpl{Operation: "x", Steps: []PulseStep{{Kind: "play", PortRole: "drive0", Waveform: &spec}}}
	if _, err := dev.DefaultPulse("x", []int{0}); !errors.Is(err, ErrNotSupported) {
		t.Fatal("uncalibrated op should be ErrNotSupported")
	}
	has, err := dev.QueryOperationProperty("x", []int{0}, OpPropHasPulseImpl)
	if err != nil || has.(bool) {
		t.Fatal("HasPulseImpl should be false before SetPulseImpl")
	}
	if err := dev.SetPulseImpl("x", []int{0}, impl); err != nil {
		t.Fatal(err)
	}
	got, err := dev.DefaultPulse("x", []int{0})
	if err != nil || got.Operation != "x" {
		t.Fatalf("DefaultPulse after set: %v %+v", err, got)
	}
	has, _ = dev.QueryOperationProperty("x", []int{0}, OpPropHasPulseImpl)
	if !has.(bool) {
		t.Fatal("HasPulseImpl should be true after SetPulseImpl")
	}
}

func TestJobLifecycle(t *testing.T) {
	dev := newMockDevice("sim")
	j, err := dev.SubmitJob([]byte("payload"), FormatQIRPulse, 100)
	if err != nil {
		t.Fatal(err)
	}
	if j.ID() == "" {
		t.Fatal("job without ID")
	}
	if st := j.Wait(context.Background()); st != JobDone {
		t.Fatalf("status = %v", st)
	}
	res, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Shots != 100 {
		t.Fatalf("shots = %d", res.Shots)
	}
}

func TestJobFailure(t *testing.T) {
	dev := newMockDevice("sim")
	j, err := dev.SubmitJob([]byte("poison"), FormatQIRPulse, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st := j.Wait(context.Background()); st != JobFailed {
		t.Fatalf("status = %v", st)
	}
	if _, err := j.Result(); err == nil {
		t.Fatal("failed job returned result")
	}
}

func TestJobUnsupportedFormat(t *testing.T) {
	dev := newMockDevice("sim")
	if _, err := dev.SubmitJob([]byte("x"), FormatMLIRPulse, 10); err == nil {
		t.Fatal("unsupported format accepted")
	}
}

func TestJobCancel(t *testing.T) {
	j := NewAsyncJob("j1")
	if err := j.Cancel(); err != nil {
		t.Fatal(err)
	}
	if j.Status() != JobCancelled {
		t.Fatal("not cancelled")
	}
	if j.Start() {
		t.Fatal("cancelled job started")
	}
	if _, err := j.Result(); err == nil {
		t.Fatal("cancelled job returned result")
	}
	// Cancel after completion fails.
	j2 := NewAsyncJob("j2")
	j2.Start()
	j2.Finish(&Result{Shots: 1})
	if err := j2.Cancel(); err == nil {
		t.Fatal("cancel of done job accepted")
	}
}

func TestJobResultBeforeDone(t *testing.T) {
	j := NewAsyncJob("j")
	if _, err := j.Result(); err == nil {
		t.Fatal("queued job returned result")
	}
}

func TestJobWaitConcurrent(t *testing.T) {
	j := NewAsyncJob("j")
	j.Start()
	done := make(chan JobStatus, 4)
	for i := 0; i < 4; i++ {
		go func() { done <- j.Wait(context.Background()) }()
	}
	time.Sleep(5 * time.Millisecond)
	j.Finish(&Result{Shots: 1})
	for i := 0; i < 4; i++ {
		if st := <-done; st != JobDone {
			t.Fatalf("waiter %d got %v", i, st)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	for _, s := range []JobStatus{JobQueued, JobRunning, JobDone, JobFailed, JobCancelled} {
		if strings.HasPrefix(s.String(), "JobStatus(") {
			t.Errorf("status %d unnamed", int(s))
		}
	}
	for _, p := range []PulseSupport{PulseNone, PulseSiteLevel, PulsePortLevel} {
		if strings.HasPrefix(p.String(), "PulseSupport(") {
			t.Errorf("support %d unnamed", int(p))
		}
	}
}
