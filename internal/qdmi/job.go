package qdmi

import (
	"context"
	"fmt"
	"sync"
)

// AsyncJob is a reusable Job implementation for devices that execute
// payloads in a background goroutine. Devices construct it with NewAsyncJob
// and complete it with Finish or Fail. It also implements the optional
// RunningCanceller capability: device runtimes poll Aborted at execution
// checkpoints and drop the result of an aborted job.
type AsyncJob struct {
	id string

	mu     sync.Mutex
	status JobStatus
	result *Result
	err    error
	done   chan struct{} // closed when the job reaches a terminal state
}

// NewAsyncJob creates a job in the queued state.
func NewAsyncJob(id string) *AsyncJob {
	return &AsyncJob{id: id, status: JobQueued, done: make(chan struct{})}
}

// ID implements Job.
func (j *AsyncJob) ID() string { return j.id }

// Status implements Job.
func (j *AsyncJob) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Start transitions queued → running. It returns false if the job was
// cancelled before execution began.
func (j *AsyncJob) Start() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != JobQueued {
		return false
	}
	j.status = JobRunning
	return true
}

// Finish completes the job successfully. It is a no-op if the job already
// reached a terminal state (e.g. it was cancelled mid-flight).
func (j *AsyncJob) Finish(r *Result) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.Terminal() {
		return
	}
	j.result = r
	j.status = JobDone
	close(j.done)
}

// Fail completes the job with an error. It is a no-op if the job already
// reached a terminal state.
func (j *AsyncJob) Fail(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.Terminal() {
		return
	}
	j.err = err
	j.status = JobFailed
	close(j.done)
}

// Wait implements Job: it blocks until the job reaches a terminal state or
// ctx is cancelled, and returns the status observed at return (which is
// non-terminal only if ctx fired first).
func (j *AsyncJob) Wait(ctx context.Context) JobStatus {
	select {
	case <-j.done:
	case <-ctx.Done():
	}
	return j.Status()
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *AsyncJob) Done() <-chan struct{} { return j.done }

// Result implements Job.
func (j *AsyncJob) Result() (*Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.status {
	case JobDone:
		return j.result, nil
	case JobFailed:
		return nil, j.err
	case JobCancelled:
		return nil, fmt.Errorf("%w: job %s", ErrCancelled, j.id)
	default:
		return nil, fmt.Errorf("%w: job %s has not finished", ErrInvalidArgument, j.id)
	}
}

// Cancel implements Job. Only queued jobs can be cancelled; use
// CancelRunning to abort a job that may already be executing.
func (j *AsyncJob) Cancel() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != JobQueued {
		return fmt.Errorf("%w: job %s is %s", ErrInvalidArgument, j.id, j.status)
	}
	j.status = JobCancelled
	close(j.done)
	return nil
}

// CancelRunning implements the RunningCanceller capability: it aborts a
// queued or running job. The device runtime observes the transition through
// Aborted and discards any in-flight work.
func (j *AsyncJob) CancelRunning() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.status {
	case JobQueued, JobRunning:
		j.status = JobCancelled
		close(j.done)
		return nil
	case JobCancelled:
		return nil
	default:
		return fmt.Errorf("%w: job %s is %s", ErrInvalidArgument, j.id, j.status)
	}
}

// Aborted reports whether the job was cancelled; device execution loops
// poll it at checkpoints and abandon aborted work.
func (j *AsyncJob) Aborted() bool { return j.Status() == JobCancelled }
