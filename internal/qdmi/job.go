package qdmi

import (
	"fmt"
	"sync"
)

// AsyncJob is a reusable Job implementation for devices that execute
// payloads in a background goroutine. Devices construct it with NewAsyncJob
// and complete it with Finish or Fail.
type AsyncJob struct {
	id string

	mu     sync.Mutex
	cond   *sync.Cond
	status JobStatus
	result *Result
	err    error
}

// NewAsyncJob creates a job in the queued state.
func NewAsyncJob(id string) *AsyncJob {
	j := &AsyncJob{id: id, status: JobQueued}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// ID implements Job.
func (j *AsyncJob) ID() string { return j.id }

// Status implements Job.
func (j *AsyncJob) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Start transitions queued → running. It returns false if the job was
// cancelled before execution began.
func (j *AsyncJob) Start() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != JobQueued {
		return false
	}
	j.status = JobRunning
	return true
}

// Finish completes the job successfully.
func (j *AsyncJob) Finish(r *Result) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.result = r
	j.status = JobDone
	j.cond.Broadcast()
}

// Fail completes the job with an error.
func (j *AsyncJob) Fail(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.err = err
	j.status = JobFailed
	j.cond.Broadcast()
}

// Wait implements Job.
func (j *AsyncJob) Wait() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	for j.status == JobQueued || j.status == JobRunning {
		j.cond.Wait()
	}
	return j.status
}

// Result implements Job.
func (j *AsyncJob) Result() (*Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.status {
	case JobDone:
		return j.result, nil
	case JobFailed:
		return nil, j.err
	case JobCancelled:
		return nil, fmt.Errorf("%w: job %s was cancelled", ErrInvalidArgument, j.id)
	default:
		return nil, fmt.Errorf("%w: job %s has not finished", ErrInvalidArgument, j.id)
	}
}

// Cancel implements Job. Only queued jobs can be cancelled.
func (j *AsyncJob) Cancel() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != JobQueued {
		return fmt.Errorf("%w: job %s is %s", ErrInvalidArgument, j.id, j.status)
	}
	j.status = JobCancelled
	j.cond.Broadcast()
	return nil
}
