// Package qdmi implements the Quantum Device Management Interface — the
// hardware abstraction layer of the stack (paper Section 5.3, Fig. 3). It
// defines the three QDMI entities (clients, driver, devices), opaque
// property-query interfaces over devices, sites, operations, and — the
// pulse extension this paper proposes — ports, plus a job interface whose
// payload formats include the QIR Pulse Profile exchange format.
package qdmi

import (
	"context"
	"errors"
	"fmt"

	"mqsspulse/internal/pulse"
	"mqsspulse/internal/qir"
	"mqsspulse/internal/readout"
	"mqsspulse/internal/telemetry"
	"mqsspulse/internal/waveform"
)

// Status codes, mirroring the C specification's error enumeration.
var (
	// ErrNotSupported signals a property or operation the device does not
	// implement (QDMI_ERROR_NOTSUPPORTED).
	ErrNotSupported = errors.New("qdmi: not supported")
	// ErrInvalidArgument signals a malformed query (QDMI_ERROR_INVALIDARGUMENT).
	ErrInvalidArgument = errors.New("qdmi: invalid argument")
	// ErrFatal signals device-side failure (QDMI_ERROR_FATAL).
	ErrFatal = errors.New("qdmi: fatal device error")
	// ErrCancelled signals a job that was cancelled before producing a
	// result; errors.Is lets callers distinguish cancellation from device
	// failure.
	ErrCancelled = errors.New("qdmi: job cancelled")
)

// DeviceProperty enumerates device-level queries. New properties can be
// added without breaking devices: unknown properties answer ErrNotSupported.
type DeviceProperty int

// Device properties.
const (
	DevicePropName DeviceProperty = iota
	DevicePropVersion
	DevicePropTechnology        // "superconducting", "trapped-ion", "neutral-atom", "simulator"
	DevicePropNumSites          // int
	DevicePropSampleRateHz      // float64
	DevicePropPulseSupport      // PulseSupport — the pulse extension
	DevicePropWaveformKinds     // []string — supported parametric envelopes
	DevicePropNativeGates       // []string
	DevicePropProgramFormats    // []ProgramFormat
	DevicePropMaxShots          // int
	DevicePropGranularity       // int, device-global waveform granularity
	DevicePropMinPulseSamples   // int
	DevicePropMaxPulseSamples   // int
	DevicePropMaxWaveformMemory // int, total samples uploadable per job
	// DevicePropCalibrationEpoch is an int64 counter identifying the
	// device's current calibration state. The bump contract: every
	// calibration mutation — frequency, amplitude, or readout-fidelity
	// writebacks, and installed or overridden pulse implementations —
	// increments it, so two equal epochs read from one device guarantee
	// identical answers to every calibration-dependent query (DefaultPulse,
	// SitePropFrequencyHz, ...) in between. Compilers key lowering caches
	// on it and schedulers verify it at dispatch; devices predating the
	// property answer ErrNotSupported and opt out of staleness checking.
	DevicePropCalibrationEpoch // int64
	// DevicePropShotWorkers is the device's default per-job shot-worker
	// count (int): how many cores the runtime spreads one job's
	// independent shots (and, for open-system simulations, Monte-Carlo
	// trajectories) across when the submission does not request its own
	// count via JobOptions.ShotWorkers.
	DevicePropShotWorkers // int
)

// SiteProperty enumerates per-site queries (a site is a physical or logical
// qubit location: a transmon, an ion, an atom trap).
type SiteProperty int

// Site properties.
const (
	SitePropFrequencyHz SiteProperty = iota
	SitePropT1Seconds
	SitePropT2Seconds
	SitePropAnharmonicityHz
	SitePropReadoutFidelity
	SitePropConnectivity // []int — coupled site indices
)

// OperationProperty enumerates per-operation queries.
type OperationProperty int

// Operation properties.
const (
	OpPropDurationSeconds OperationProperty = iota
	OpPropFidelity
	OpPropArity
	OpPropParamCount
	OpPropHasPulseImpl // bool — pulse extension: calibrated implementation available
)

// PortProperty enumerates per-port queries — the port-level pulse extension.
type PortProperty int

// Port properties.
const (
	PortPropKind PortProperty = iota
	PortPropSites
	PortPropSampleRateHz
	PortPropGranularity
	PortPropMinSamples
	PortPropMaxSamples
	PortPropMaxAmplitude
)

// PulseSupport is the level of pulse access a device advertises: none, at
// site granularity (site-attached default pulses only), or full port-level
// control (arbitrary waveforms on named ports).
type PulseSupport int

// Pulse support levels.
const (
	PulseNone PulseSupport = iota
	PulseSiteLevel
	PulsePortLevel
)

// String implements fmt.Stringer.
func (p PulseSupport) String() string {
	switch p {
	case PulseNone:
		return "none"
	case PulseSiteLevel:
		return "site"
	case PulsePortLevel:
		return "port"
	default:
		return fmt.Sprintf("PulseSupport(%d)", int(p))
	}
}

// ProgramFormat identifies a job payload encoding. Adding pulse payloads to
// QDMI required "only adding a single enumeration value" (paper, Fig. 3
// caption) — here that value is FormatQIRPulse.
type ProgramFormat string

// Program formats.
const (
	FormatQIRBase   ProgramFormat = "qir-base"
	FormatQIRPulse  ProgramFormat = "qir-pulse" // the pulse extension
	FormatMLIRPulse ProgramFormat = "mlir-pulse"
)

// JobStatus is the lifecycle state of a submitted job.
type JobStatus int

// Job statuses.
const (
	JobQueued JobStatus = iota
	JobRunning
	JobDone
	JobFailed
	JobCancelled
)

// Terminal reports whether the status is final (done, failed, or
// cancelled): a terminal job never transitions again.
func (s JobStatus) Terminal() bool {
	switch s {
	case JobDone, JobFailed, JobCancelled:
		return true
	default:
		return false
	}
}

// String implements fmt.Stringer.
func (s JobStatus) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	case JobCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("JobStatus(%d)", int(s))
	}
}

// Result is a completed job's measurement data. Counts are always
// populated; the IQ-level fields are set when the job was submitted at a
// kerneled or raw measurement level through an AcquisitionSubmitter.
type Result struct {
	Counts          map[uint64]int
	Shots           int
	DurationSeconds float64 // executed schedule wall-clock length

	// MeasLevel records the measurement level of the returned data.
	MeasLevel readout.MeasLevel
	// Bits lists the classical-bit positions captured, in the column order
	// of IQ and Raw.
	Bits []int
	// IQ holds one integrated point per capture per shot (one averaged row
	// under MeasReturn avg); kerneled and raw levels only.
	IQ [][]readout.IQ
	// Raw holds per-sample capture traces, [shot][capture][sample]; raw
	// level only.
	Raw [][][]complex128
}

// JobOptions extends plain (payload, format, shots) submission with the
// acquisition parameters of the pulse extension.
type JobOptions struct {
	Shots int
	// MeasLevel selects raw/kerneled/discriminated readout records.
	MeasLevel readout.MeasLevel
	// MeasReturn selects per-shot or shot-averaged records.
	MeasReturn readout.MeasReturn
	// Telemetry, when non-nil, receives the device-side execution spans
	// (device-execute, readout-post) of the submitting job's trace; nil
	// submissions run uninstrumented.
	Telemetry *telemetry.Timeline
	// TelemetryParent is the span the device-side spans nest under
	// (the scheduler's dispatch span); zero attaches them at top level.
	TelemetryParent telemetry.SpanID
	// ShotWorkers, when positive, overrides the device's default worker
	// count (DevicePropShotWorkers) for this job's per-shot execution
	// phase. Shot outcomes never depend on worker scheduling or
	// completion order.
	ShotWorkers int
}

// AcquisitionSubmitter is an optional Device capability: devices whose
// runtimes can return sub-discriminated measurement records implement it.
// Callers type-assert; devices without it only serve discriminated counts
// through SubmitJob.
type AcquisitionSubmitter interface {
	// SubmitJobOpts enqueues a payload with acquisition options.
	SubmitJobOpts(payload []byte, format ProgramFormat, opts JobOptions) (Job, error)
}

// ModuleSubmitter is an optional Device capability for the deferred-binding
// template path: devices that accept an in-memory QIR module implement it,
// letting bound sweep points skip the emit-text/parse-text round trip a
// byte payload would cost per point. The module must be fully concrete
// (already bound). Callers type-assert; the QRM falls back to emitting
// bytes for devices without it.
type ModuleSubmitter interface {
	// SubmitModule enqueues a concrete QIR module with acquisition options.
	SubmitModule(mod *qir.Module, opts JobOptions) (Job, error)
}

// Job is a handle on an asynchronous device execution.
type Job interface {
	// ID returns the device-unique job identifier.
	ID() string
	// Status returns the current lifecycle state.
	Status() JobStatus
	// Wait blocks until the job leaves the queue/running states or ctx is
	// cancelled, whichever comes first, and returns the status observed at
	// return. A cancelled ctx abandons only the wait, not the job.
	Wait(ctx context.Context) JobStatus
	// Result returns the measurement data of a JobDone job.
	Result() (*Result, error)
	// Cancel requests cancellation of a queued job.
	Cancel() error
}

// RunningCanceller is an optional Job capability: devices whose runtimes
// can abort an execution that has already started implement it. Callers
// type-assert; jobs without the capability can only be cancelled while
// queued.
type RunningCanceller interface {
	// CancelRunning aborts a queued or running job, transitioning it to
	// JobCancelled.
	CancelRunning() error
}

// PulseStep is one element of a calibrated pulse implementation. PortRole
// names a logical channel ("drive0", "drive1", "coupler", "readout0"); the
// device maps roles onto concrete ports for the target site tuple.
type PulseStep struct {
	Kind     string // "play", "shift_phase", "set_frequency", "frame_change", "delay", "barrier", "capture"
	PortRole string
	Waveform *waveform.Spec // for play
	PhaseRad float64
	FreqHz   float64
	Samples  int64 // for delay/capture
}

// PulseImpl is a calibrated, device-independent description of an
// operation's pulse sequence — what DefaultPulse queries return and what
// SetPulseImpl installs for custom operations (paper Section 5.3:
// "mechanisms to query and set default pulse implementations ... as well as
// to add pulse implementations for custom operations").
type PulseImpl struct {
	Operation string
	Steps     []PulseStep
}

// Validate checks structural sanity of a pulse implementation.
func (pi *PulseImpl) Validate() error {
	if pi.Operation == "" {
		return fmt.Errorf("%w: pulse impl without operation name", ErrInvalidArgument)
	}
	if len(pi.Steps) == 0 {
		return fmt.Errorf("%w: pulse impl %s has no steps", ErrInvalidArgument, pi.Operation)
	}
	for i, st := range pi.Steps {
		switch st.Kind {
		case "play":
			if st.Waveform == nil {
				return fmt.Errorf("%w: step %d: play without waveform", ErrInvalidArgument, i)
			}
			if _, err := st.Waveform.Materialize(); err != nil {
				return fmt.Errorf("%w: step %d: %v", ErrInvalidArgument, i, err)
			}
		case "shift_phase", "set_frequency", "frame_change", "barrier":
		case "delay", "capture":
			if st.Samples <= 0 {
				return fmt.Errorf("%w: step %d: %s with non-positive samples", ErrInvalidArgument, i, st.Kind)
			}
		default:
			return fmt.Errorf("%w: step %d: unknown kind %q", ErrInvalidArgument, i, st.Kind)
		}
		if st.Kind != "barrier" && st.PortRole == "" {
			return fmt.Errorf("%w: step %d: missing port role", ErrInvalidArgument, i)
		}
	}
	return nil
}

// Device is the QDMI device interface: property queries over the device,
// its sites, operations, and ports, the pulse-calibration extension, and
// job submission.
type Device interface {
	// Name returns the device identifier used by the driver registry.
	Name() string

	// QueryDeviceProperty answers a device-level property query.
	QueryDeviceProperty(p DeviceProperty) (any, error)
	// NumSites returns the number of addressable sites.
	NumSites() int
	// QuerySiteProperty answers a site-level property query.
	QuerySiteProperty(site int, p SiteProperty) (any, error)
	// Operations lists the device's supported operation names.
	Operations() []string
	// QueryOperationProperty answers an operation-level property query for
	// a concrete site tuple (nil sites = device-wide aggregate).
	QueryOperationProperty(op string, sites []int, p OperationProperty) (any, error)

	// Ports lists the pulse-accessible hardware channels (pulse extension;
	// empty for PulseNone devices).
	Ports() []*pulse.Port
	// QueryPortProperty answers a port-level property query.
	QueryPortProperty(portID string, p PortProperty) (any, error)
	// DefaultPulse returns the calibrated pulse implementation of an
	// operation on a site tuple.
	DefaultPulse(op string, sites []int) (*PulseImpl, error)
	// SetPulseImpl installs (or overrides) the pulse implementation of an
	// operation on a site tuple, enabling custom gates defined by experts.
	SetPulseImpl(op string, sites []int, impl *PulseImpl) error

	// SubmitJob enqueues a payload for execution.
	SubmitJob(payload []byte, format ProgramFormat, shots int) (Job, error)
}

// QueryString is a typed convenience wrapper over property queries.
func QueryString(dev Device, p DeviceProperty) (string, error) {
	v, err := dev.QueryDeviceProperty(p)
	if err != nil {
		return "", err
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("%w: property %d is %T, not string", ErrInvalidArgument, p, v)
	}
	return s, nil
}

// QueryInt is a typed convenience wrapper over property queries.
func QueryInt(dev Device, p DeviceProperty) (int, error) {
	v, err := dev.QueryDeviceProperty(p)
	if err != nil {
		return 0, err
	}
	n, ok := v.(int)
	if !ok {
		return 0, fmt.Errorf("%w: property %d is %T, not int", ErrInvalidArgument, p, v)
	}
	return n, nil
}

// QueryFloat is a typed convenience wrapper over property queries.
func QueryFloat(dev Device, p DeviceProperty) (float64, error) {
	v, err := dev.QueryDeviceProperty(p)
	if err != nil {
		return 0, err
	}
	f, ok := v.(float64)
	if !ok {
		return 0, fmt.Errorf("%w: property %d is %T, not float64", ErrInvalidArgument, p, v)
	}
	return f, nil
}

// QueryCalibrationEpoch returns the device's calibration epoch (see
// DevicePropCalibrationEpoch). Devices without the property answer
// ErrNotSupported; callers should then skip staleness checks rather than
// assume an epoch of zero matches anything.
func QueryCalibrationEpoch(dev Device) (int64, error) {
	v, err := dev.QueryDeviceProperty(DevicePropCalibrationEpoch)
	if err != nil {
		return 0, err
	}
	n, ok := v.(int64)
	if !ok {
		return 0, fmt.Errorf("%w: calibration epoch property is %T, not int64", ErrInvalidArgument, v)
	}
	return n, nil
}

// QueryPulseSupport returns the device's advertised pulse access level.
func QueryPulseSupport(dev Device) (PulseSupport, error) {
	v, err := dev.QueryDeviceProperty(DevicePropPulseSupport)
	if err != nil {
		return PulseNone, err
	}
	ps, ok := v.(PulseSupport)
	if !ok {
		return PulseNone, fmt.Errorf("%w: pulse support property is %T", ErrInvalidArgument, v)
	}
	return ps, nil
}

// SupportsFormat reports whether the device accepts a payload format.
func SupportsFormat(dev Device, f ProgramFormat) bool {
	v, err := dev.QueryDeviceProperty(DevicePropProgramFormats)
	if err != nil {
		return false
	}
	formats, ok := v.([]ProgramFormat)
	if !ok {
		return false
	}
	for _, g := range formats {
		if g == f {
			return true
		}
	}
	return false
}
