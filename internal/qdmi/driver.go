package qdmi

import (
	"fmt"
	"sort"
	"sync"
)

// Driver is the QDMI driver entity: the bespoke orchestration layer that
// manages available devices and mediates client requests through sessions
// (paper, Section 5.3). Clients never hold devices directly — they open a
// session and address devices by name.
type Driver struct {
	mu      sync.RWMutex
	devices map[string]Device
	nextSes int
}

// NewDriver creates an empty device registry.
func NewDriver() *Driver {
	return &Driver{devices: map[string]Device{}}
}

// RegisterDevice adds a device to the registry. Duplicate names are
// rejected.
func (d *Driver) RegisterDevice(dev Device) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	name := dev.Name()
	if name == "" {
		return fmt.Errorf("%w: device with empty name", ErrInvalidArgument)
	}
	if _, dup := d.devices[name]; dup {
		return fmt.Errorf("%w: duplicate device %q", ErrInvalidArgument, name)
	}
	d.devices[name] = dev
	return nil
}

// UnregisterDevice removes a device.
func (d *Driver) UnregisterDevice(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.devices[name]; !ok {
		return fmt.Errorf("%w: unknown device %q", ErrInvalidArgument, name)
	}
	delete(d.devices, name)
	return nil
}

// OpenSession allocates a client session over the current device set.
func (d *Driver) OpenSession() *Session {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextSes++
	return &Session{driver: d, id: d.nextSes, open: true}
}

// deviceNames returns the sorted registry keys.
func (d *Driver) deviceNames() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	names := make([]string, 0, len(d.devices))
	for n := range d.devices {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Session is a client's handle on the driver. All device access flows
// through it, giving the driver a place to enforce allocation and
// access-control policy.
type Session struct {
	driver *Driver
	id     int
	mu     sync.Mutex
	open   bool
}

// ID returns the session identifier.
func (s *Session) ID() int { return s.id }

// Devices lists the names of devices visible to this session.
func (s *Session) Devices() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.open {
		return nil, fmt.Errorf("%w: session %d is closed", ErrInvalidArgument, s.id)
	}
	return s.driver.deviceNames(), nil
}

// Device resolves a device by name.
func (s *Session) Device(name string) (Device, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.open {
		return nil, fmt.Errorf("%w: session %d is closed", ErrInvalidArgument, s.id)
	}
	s.driver.mu.RLock()
	defer s.driver.mu.RUnlock()
	dev, ok := s.driver.devices[name]
	if !ok {
		return nil, fmt.Errorf("%w: unknown device %q", ErrInvalidArgument, name)
	}
	return dev, nil
}

// Close releases the session. Further calls fail with ErrInvalidArgument.
func (s *Session) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.open = false
}
