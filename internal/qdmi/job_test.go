package qdmi

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestAsyncJobWaitContextCancel(t *testing.T) {
	j := NewAsyncJob("j")
	j.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if st := j.Wait(ctx); st != JobRunning {
		t.Fatalf("status = %v, want still-running after abandoned wait", st)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("Wait did not honor the context deadline")
	}
	// The job is untouched; a fresh wait still sees it complete.
	go j.Finish(&Result{Shots: 1})
	if st := j.Wait(context.Background()); st != JobDone {
		t.Fatalf("status = %v", st)
	}
}

func TestAsyncJobCancelRunning(t *testing.T) {
	j := NewAsyncJob("j")
	if !j.Start() {
		t.Fatal("start failed")
	}
	var rc RunningCanceller = j // capability is part of the type
	if err := rc.CancelRunning(); err != nil {
		t.Fatal(err)
	}
	if j.Status() != JobCancelled || !j.Aborted() {
		t.Fatalf("status = %v", j.Status())
	}
	// The device runtime's late Finish is dropped, not resurrected.
	j.Finish(&Result{Shots: 5})
	if j.Status() != JobCancelled {
		t.Fatalf("finish resurrected a cancelled job: %v", j.Status())
	}
	if _, err := j.Result(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v", err)
	}
	// Idempotent.
	if err := j.CancelRunning(); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncJobCancelRunningAfterDone(t *testing.T) {
	j := NewAsyncJob("j")
	j.Start()
	j.Finish(&Result{Shots: 1})
	if err := j.CancelRunning(); err == nil {
		t.Fatal("cancel-running of done job accepted")
	}
	if res, err := j.Result(); err != nil || res.Shots != 1 {
		t.Fatalf("result lost: %v %v", res, err)
	}
}

func TestJobStatusTerminal(t *testing.T) {
	for st, want := range map[JobStatus]bool{
		JobQueued: false, JobRunning: false,
		JobDone: true, JobFailed: true, JobCancelled: true,
	} {
		if st.Terminal() != want {
			t.Errorf("%v.Terminal() = %v", st, st.Terminal())
		}
	}
}
