package passes

import (
	"fmt"
	"math"

	"mqsspulse/internal/mlir"
	"mqsspulse/internal/pulse"
	"mqsspulse/internal/qdmi"
	"mqsspulse/internal/waveform"
)

// VerifyCalibrationPass re-checks a lowered module against the target's
// calibrated limits, catching miscompiles at compile time instead of on
// hardware: every played waveform must respect its port's amplitude limit
// (a stale or corrupt calibration table can scale envelopes past it), and
// the module's timing — replayed through the same ASAP resolution the
// device runtime uses — must satisfy pulse.CheckNoOverlap and the ports'
// sample-length constraints. It runs after legalization, so a violation
// here is a pipeline bug or a calibration-table inconsistency, never user
// error.
type VerifyCalibrationPass struct{}

// Name implements Pass.
func (VerifyCalibrationPass) Name() string { return "verify-calibration" }

// Run implements Pass.
func (VerifyCalibrationPass) Run(m *mlir.Module, ctx *Context) error {
	if ctx == nil || ctx.Device == nil {
		return nil // target-independent compilation has no limits to check
	}
	plays := 0
	for _, seq := range m.Sequences {
		n, err := verifyLoweredSequence(m, seq, ctx.Device)
		if err != nil {
			return fmt.Errorf("sequence %s: %w", seq.Name, err)
		}
		plays += n
	}
	if ctx.Stats != nil {
		ctx.Stats["verifycal.plays"] += plays
	}
	return nil
}

// verifyLoweredSequence checks one sequence and returns how many plays it
// verified.
func verifyLoweredSequence(m *mlir.Module, seq *mlir.Sequence, dev qdmi.Device) (int, error) {
	framePort := map[string]string{}
	for i, a := range seq.Args {
		if a.Type == mlir.TypeMixedFrame && i < len(seq.ArgPorts) {
			framePort[a.Name] = seq.ArgPorts[i]
		}
	}
	portByID := map[string]*pulse.Port{}
	for _, p := range dev.Ports() {
		portByID[p.ID] = p
	}
	defByName := map[string]*mlir.WaveformDef{}
	for _, d := range m.WaveformDefs {
		defByName[d.Name] = d
	}

	// Mirror the device-side schedule: all bound ports exist up front so
	// unqualified barriers synchronize the same port set the runtime sees.
	sched := pulse.NewSchedule()
	added := map[string]bool{}
	for _, name := range sortedKeys(framePort) {
		pid := framePort[name]
		p, ok := portByID[pid]
		if !ok {
			return 0, fmt.Errorf("frame %%%s binds port %q unknown to target device", name, pid)
		}
		if added[pid] {
			continue
		}
		added[pid] = true
		if err := sched.AddPort(p); err != nil {
			return 0, err
		}
		if err := sched.AddFrame(pulse.NewFrame(pid+"-vframe", 0)); err != nil {
			return 0, err
		}
	}
	portOf := func(frame mlir.Value) (string, error) {
		pid, ok := framePort[frame.Ref]
		if !ok {
			return "", fmt.Errorf("frame %%%s has no port binding", frame.Ref)
		}
		return pid, nil
	}

	materialized := map[string]*waveform.Waveform{}
	wfOfValue := map[string]string{}
	plays, captures := 0, 0
	schedulable := true
	for _, op := range seq.Ops {
		switch o := op.(type) {
		case *mlir.WaveformRefOp:
			wfOfValue[o.Result] = o.Waveform
		case *mlir.PlayOp:
			name, ok := wfOfValue[o.Waveform.Ref]
			if !ok {
				return plays, fmt.Errorf("play of unbound waveform value %%%s", o.Waveform.Ref)
			}
			w, ok := materialized[name]
			if !ok {
				def, found := defByName[name]
				if !found {
					return plays, fmt.Errorf("play references undefined waveform @%s", name)
				}
				var err error
				if w, err = def.Spec.Materialize(); err != nil {
					return plays, err
				}
				materialized[name] = w
			}
			pid, err := portOf(o.Frame)
			if err != nil {
				return plays, err
			}
			maxAmp := portMaxAmplitude(dev, pid)
			// For parametric defs (AmpExpr set) the materialized samples are
			// the base envelope — the |scale|=1 worst case; template
			// compilation bounds |scale| ≤ 1 over the declared range, so the
			// base peak dominates every bound peak.
			if peak := w.PeakAmplitude(); peak > maxAmp+1e-12 {
				return plays, fmt.Errorf("lowered waveform @%s peak %.6g exceeds port %s amplitude limit %g",
					name, peak, pid, maxAmp)
			}
			if err := sched.Append(&pulse.Play{Port: pid, Frame: pid + "-vframe", Waveform: w}); err != nil {
				return plays, err
			}
			plays++
		case *mlir.DelayOp:
			pid, err := portOf(o.Frame)
			if err != nil {
				return plays, err
			}
			if o.SamplesExpr != nil {
				// Unbound delay length: timing is unknown until bind, so the
				// overlap replay below would be meaningless for this sequence.
				schedulable = false
				continue
			}
			if err := sched.Append(&pulse.Delay{Port: pid, Samples: o.Samples}); err != nil {
				return plays, err
			}
		case *mlir.CaptureOp:
			pid, err := portOf(o.Frame)
			if err != nil {
				return plays, err
			}
			err = sched.Append(&pulse.Capture{
				Port: pid, Frame: pid + "-vframe", Bit: captures, DurationSamples: o.Samples,
			})
			if err != nil {
				return plays, err
			}
			captures++
		case *mlir.BarrierOp:
			b := &pulse.Barrier{}
			for _, f := range o.Frames {
				pid, err := portOf(f)
				if err != nil {
					return plays, err
				}
				b.Ports = append(b.Ports, pid)
			}
			if err := sched.Append(b); err != nil {
				return plays, err
			}
		case *mlir.ShiftPhaseOp, *mlir.SetPhaseOp, *mlir.FrameChangeOp,
			*mlir.ShiftFrequencyOp, *mlir.SetFrequencyOp, *mlir.ReturnOp:
			// Zero-duration frame bookkeeping: irrelevant to timing.
		case *mlir.StandardGateOp:
			// Hybrid module: residual gates lower device-side, so their
			// durations are unknown at this level — skip the timing check
			// but keep verifying the pulse-level plays above.
			schedulable = false
		default:
			schedulable = false
		}
	}
	if !schedulable {
		return plays, nil
	}
	sp, err := sched.Resolve()
	if err != nil {
		return plays, err
	}
	if err := sp.CheckNoOverlap(); err != nil {
		return plays, err
	}
	return plays, nil
}

// portMaxAmplitude reads a port's amplitude limit through QDMI; ports
// without the property (or with a non-positive limit) are unconstrained.
func portMaxAmplitude(dev qdmi.Device, portID string) float64 {
	v, err := dev.QueryPortProperty(portID, qdmi.PortPropMaxAmplitude)
	if err != nil {
		return math.Inf(1)
	}
	if f, ok := v.(float64); ok && f > 0 {
		return f
	}
	return math.Inf(1)
}
