// Package passes implements the dialect-aware pass infrastructure of the
// MQSS compiler (paper Section 5.2): a pass manager that runs registered
// transformations over MLIR pulse modules, with canonicalization, dead-code
// elimination, QDMI-informed gate→pulse lowering, and hardware-constraint
// legalization passes.
package passes

import (
	"fmt"
	"time"

	"mqsspulse/internal/mlir"
	"mqsspulse/internal/qdmi"
)

// Context carries shared state across a pipeline run: the target device
// (for calibration queries during lowering and constraint legalization),
// statistics, and a log of per-pass timings.
type Context struct {
	// Device is the compilation target; nil for target-independent passes.
	Device qdmi.Device
	// Stats accumulates named counters (ops removed, gates lowered, ...).
	Stats map[string]int
	// Timings records per-pass wall-clock durations.
	Timings []PassTiming
}

// PassTiming is one pipeline log entry.
type PassTiming struct {
	Pass     string
	Duration time.Duration
	OpsIn    int
	OpsOut   int
}

// NewContext creates an empty pass context for a target device.
func NewContext(dev qdmi.Device) *Context {
	return &Context{Device: dev, Stats: map[string]int{}}
}

// Pass is one module transformation.
type Pass interface {
	// Name identifies the pass in logs.
	Name() string
	// Run transforms the module in place.
	Run(m *mlir.Module, ctx *Context) error
}

// Manager executes a pass pipeline, recording timings and verifying the
// module after every pass (the dialect-agnostic orchestration the paper
// attributes to the LLVM pass manager).
type Manager struct {
	passes []Pass
	// VerifyEach re-verifies the module after every pass (default true via
	// NewManager).
	VerifyEach bool
}

// NewManager builds a pipeline.
func NewManager(passes ...Pass) *Manager {
	return &Manager{passes: passes, VerifyEach: true}
}

// Add appends a pass.
func (pm *Manager) Add(p Pass) { pm.passes = append(pm.passes, p) }

// Passes lists the registered pass names.
func (pm *Manager) Passes() []string {
	out := make([]string, len(pm.passes))
	for i, p := range pm.passes {
		out[i] = p.Name()
	}
	return out
}

// Run executes the pipeline.
func (pm *Manager) Run(m *mlir.Module, ctx *Context) error {
	if ctx == nil {
		ctx = NewContext(nil)
	}
	for _, p := range pm.passes {
		in := m.OpCount()
		start := time.Now()
		if err := p.Run(m, ctx); err != nil {
			return fmt.Errorf("passes: %s: %w", p.Name(), err)
		}
		ctx.Timings = append(ctx.Timings, PassTiming{
			Pass: p.Name(), Duration: time.Since(start), OpsIn: in, OpsOut: m.OpCount(),
		})
		if pm.VerifyEach {
			if err := m.Verify(); err != nil {
				return fmt.Errorf("passes: module invalid after %s: %w", p.Name(), err)
			}
		}
	}
	return nil
}

// DefaultPipeline assembles the standard MQSS pulse pipeline: verify,
// lower gates using the target's calibration, canonicalize frame ops,
// eliminate dead waveforms, legalize against hardware constraints, and
// re-verify the lowered program against the target's calibrated limits.
func DefaultPipeline() *Manager {
	return NewManager(
		VerifyPass{},
		GateLoweringPass{},
		CanonicalizePass{},
		DeadWaveformElimPass{},
		LegalizePass{},
		VerifyCalibrationPass{},
	)
}

// VerifyPass re-runs the module verifier (useful as a pipeline anchor).
type VerifyPass struct{}

// Name implements Pass.
func (VerifyPass) Name() string { return "verify" }

// Run implements Pass.
func (VerifyPass) Run(m *mlir.Module, _ *Context) error { return m.Verify() }
