package passes

import (
	"errors"
	"math"
	"testing"

	"mqsspulse/internal/mlir"
	"mqsspulse/internal/waveform"
)

// pulseOnlyModule builds a small, valid pulse-only module for pass tests.
func pulseOnlyModule() *mlir.Module {
	m := &mlir.Module{
		WaveformDefs: []*mlir.WaveformDef{
			{Name: "w1", Spec: waveform.Spec{Name: "w1", Samples: [][2]float64{{0.1, 0}, {0.2, 0}}}},
			{Name: "w2", Spec: waveform.Spec{Name: "w2", Samples: [][2]float64{{0.3, 0}}}},
		},
	}
	seq := &mlir.Sequence{
		Name:     "s",
		Args:     []mlir.Arg{{Name: "f0", Type: mlir.TypeMixedFrame}},
		ArgPorts: []string{"q0-drive"},
	}
	seq.Ops = []mlir.Op{
		&mlir.WaveformRefOp{Result: "v1", Waveform: "w1"},
		&mlir.WaveformRefOp{Result: "v2", Waveform: "w2"}, // dead: never played
		&mlir.ShiftPhaseOp{Frame: mlir.Ref("f0"), Phase: mlir.Lit(0.3)},
		&mlir.ShiftPhaseOp{Frame: mlir.Ref("f0"), Phase: mlir.Lit(0.4)},
		&mlir.ShiftPhaseOp{Frame: mlir.Ref("f0"), Phase: mlir.Lit(0)},
		&mlir.DelayOp{Frame: mlir.Ref("f0"), Samples: 4},
		&mlir.DelayOp{Frame: mlir.Ref("f0"), Samples: 6},
		&mlir.DelayOp{Frame: mlir.Ref("f0"), Samples: 0},
		&mlir.PlayOp{Frame: mlir.Ref("f0"), Waveform: mlir.Ref("v1")},
		&mlir.BarrierOp{},
		&mlir.BarrierOp{},
		&mlir.ReturnOp{},
	}
	m.Sequences = []*mlir.Sequence{seq}
	return m
}

func TestCanonicalizeMerges(t *testing.T) {
	m := pulseOnlyModule()
	ctx := NewContext(nil)
	if err := (CanonicalizePass{}).Run(m, ctx); err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	var shifts, delays, barriers int
	for _, op := range m.Sequences[0].Ops {
		switch o := op.(type) {
		case *mlir.ShiftPhaseOp:
			shifts++
			if math.Abs(o.Phase.Lit-0.7) > 1e-12 {
				t.Fatalf("merged phase %g, want 0.7", o.Phase.Lit)
			}
		case *mlir.DelayOp:
			delays++
			if o.Samples != 10 {
				t.Fatalf("merged delay %d, want 10", o.Samples)
			}
		case *mlir.BarrierOp:
			barriers++
		}
	}
	if shifts != 1 || delays != 1 || barriers != 1 {
		t.Fatalf("shifts=%d delays=%d barriers=%d", shifts, delays, barriers)
	}
	if ctx.Stats["canonicalize.removed"] == 0 {
		t.Fatal("stats empty")
	}
}

func TestCanonicalizeSkipsValueRefs(t *testing.T) {
	m := pulseOnlyModule()
	m.Sequences[0].Args = append(m.Sequences[0].Args, mlir.Arg{Name: "p", Type: mlir.TypeF64})
	m.Sequences[0].ArgPorts = append(m.Sequences[0].ArgPorts, "")
	// Two shifts where one is a runtime value: must not merge.
	m.Sequences[0].Ops = []mlir.Op{
		&mlir.ShiftPhaseOp{Frame: mlir.Ref("f0"), Phase: mlir.Ref("p")},
		&mlir.ShiftPhaseOp{Frame: mlir.Ref("f0"), Phase: mlir.Lit(0.4)},
		&mlir.ReturnOp{},
	}
	if err := (CanonicalizePass{}).Run(m, NewContext(nil)); err != nil {
		t.Fatal(err)
	}
	shifts := 0
	for _, op := range m.Sequences[0].Ops {
		if _, ok := op.(*mlir.ShiftPhaseOp); ok {
			shifts++
		}
	}
	if shifts != 2 {
		t.Fatalf("value-ref shift was merged: %d", shifts)
	}
}

func TestCanonicalizePhaseWraps(t *testing.T) {
	m := pulseOnlyModule()
	m.Sequences[0].Ops = []mlir.Op{
		&mlir.ShiftPhaseOp{Frame: mlir.Ref("f0"), Phase: mlir.Lit(3)},
		&mlir.ShiftPhaseOp{Frame: mlir.Ref("f0"), Phase: mlir.Lit(3.5)},
		&mlir.ReturnOp{},
	}
	if err := (CanonicalizePass{}).Run(m, NewContext(nil)); err != nil {
		t.Fatal(err)
	}
	sp := m.Sequences[0].Ops[0].(*mlir.ShiftPhaseOp)
	if sp.Phase.Lit > math.Pi || sp.Phase.Lit <= -math.Pi {
		t.Fatalf("phase %g not wrapped", sp.Phase.Lit)
	}
}

func TestDeadWaveformElim(t *testing.T) {
	m := pulseOnlyModule()
	ctx := NewContext(nil)
	if err := (DeadWaveformElimPass{}).Run(m, ctx); err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(m.WaveformDefs) != 1 || m.WaveformDefs[0].Name != "w1" {
		t.Fatalf("defs after DCE: %v", m.WaveformDefs)
	}
	for _, op := range m.Sequences[0].Ops {
		if ref, ok := op.(*mlir.WaveformRefOp); ok && ref.Result == "v2" {
			t.Fatal("dead waveform_ref survived")
		}
	}
}

func TestManagerRecordsTimings(t *testing.T) {
	m := pulseOnlyModule()
	ctx := NewContext(nil)
	pm := NewManager(VerifyPass{}, CanonicalizePass{}, DeadWaveformElimPass{})
	if err := pm.Run(m, ctx); err != nil {
		t.Fatal(err)
	}
	if len(ctx.Timings) != 3 {
		t.Fatalf("timings = %d", len(ctx.Timings))
	}
	if ctx.Timings[1].OpsIn <= ctx.Timings[1].OpsOut {
		t.Fatal("canonicalize should shrink op count")
	}
}

func TestManagerNilContext(t *testing.T) {
	m := pulseOnlyModule()
	if err := NewManager(VerifyPass{}).Run(m, nil); err != nil {
		t.Fatal(err)
	}
}

type breakingPass struct{}

func (breakingPass) Name() string { return "breaker" }
func (breakingPass) Run(m *mlir.Module, _ *Context) error {
	// Corrupt the module: dangling waveform reference.
	m.Sequences[0].Ops = append([]mlir.Op{&mlir.WaveformRefOp{Result: "zz", Waveform: "ghost"}},
		m.Sequences[0].Ops...)
	return nil
}

func TestManagerVerifyEachCatchesCorruption(t *testing.T) {
	m := pulseOnlyModule()
	pm := NewManager(breakingPass{})
	err := pm.Run(m, NewContext(nil))
	if err == nil {
		t.Fatal("corrupted module passed verification")
	}
}

type failingPass struct{}

func (failingPass) Name() string                     { return "fail" }
func (failingPass) Run(*mlir.Module, *Context) error { return errors.New("boom") }

func TestManagerPropagatesPassError(t *testing.T) {
	m := pulseOnlyModule()
	err := NewManager(failingPass{}).Run(m, NewContext(nil))
	if err == nil || !contains(err.Error(), "fail") {
		t.Fatalf("err = %v", err)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestLegalizeWithoutDeviceIsNoop(t *testing.T) {
	m := pulseOnlyModule()
	before := len(m.WaveformDefs[0].Spec.Samples)
	if err := (LegalizePass{}).Run(m, NewContext(nil)); err != nil {
		t.Fatal(err)
	}
	if len(m.WaveformDefs[0].Spec.Samples) != before {
		t.Fatal("device-less legalize modified waveforms")
	}
}

func TestGateLoweringNoGatesIsNoop(t *testing.T) {
	m := pulseOnlyModule()
	if err := (GateLoweringPass{}).Run(m, NewContext(nil)); err != nil {
		t.Fatal(err)
	}
}
