package passes

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"mqsspulse/internal/devices"
	"mqsspulse/internal/mlir"
	"mqsspulse/internal/waveform"
)

// phaseCases are the literals the phase properties must survive, with the
// ±π wrap boundary represented exactly and one ulp inside it.
var phaseCases = []float64{
	0, math.Pi, -math.Pi, 2 * math.Pi, -2 * math.Pi,
	math.Pi - 1e-12, -math.Pi + 1e-12, 0.3, -1.7, 5.1,
}

// TestWrapBoundary pins wrap() to (-π, π] and phase equivalence mod 2π,
// including the exact ±π inputs.
func TestWrapBoundary(t *testing.T) {
	exact := map[float64]float64{
		math.Pi:      math.Pi,
		-math.Pi:     math.Pi, // boundary folds to the +π side
		2 * math.Pi:  0,
		-2 * math.Pi: 0,
		0:            0,
	}
	for in, want := range exact {
		if got := wrap(in); got != want {
			t.Fatalf("wrap(%g) = %g, want %g", in, got, want)
		}
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 2000; i++ {
		p := (rng.Float64() - 0.5) * 40
		w := wrap(p)
		if w <= -math.Pi || w > math.Pi {
			t.Fatalf("wrap(%g) = %g outside (-π, π]", p, w)
		}
		if math.Abs(math.Cos(w)-math.Cos(p)) > 1e-9 || math.Abs(math.Sin(w)-math.Sin(p)) > 1e-9 {
			t.Fatalf("wrap(%g) = %g is not phase-equivalent", p, w)
		}
	}
}

// accumulatedPhase sums the literal phase each frame accumulates over a
// sequence (shift_phase and frame_change contributions).
func accumulatedPhase(ops []mlir.Op) map[string]float64 {
	sum := map[string]float64{}
	for _, op := range ops {
		switch o := op.(type) {
		case *mlir.ShiftPhaseOp:
			if !o.Phase.IsRef {
				sum[o.Frame.Ref] += o.Phase.Lit
			}
		case *mlir.FrameChangeOp:
			if !o.Phase.IsRef {
				sum[o.Frame.Ref] += o.Phase.Lit
			}
		}
	}
	return sum
}

// randomFrameOps builds a random op list over the given frames: phase
// shifts (boundary-heavy), frame changes, delays, and barriers.
func randomFrameOps(rng *rand.Rand, frames []mlir.Value, n int) []mlir.Op {
	randPhase := func() float64 {
		if rng.Intn(2) == 0 {
			return phaseCases[rng.Intn(len(phaseCases))]
		}
		return (rng.Float64() - 0.5) * 4 * math.Pi
	}
	var ops []mlir.Op
	for i := 0; i < n; i++ {
		f := frames[rng.Intn(len(frames))]
		switch rng.Intn(4) {
		case 0, 1:
			ops = append(ops, &mlir.ShiftPhaseOp{Frame: f, Phase: mlir.Lit(randPhase())})
		case 2:
			ops = append(ops, &mlir.FrameChangeOp{
				Frame: f, Freq: mlir.Lit(5e9 + rng.Float64()*1e6), Phase: mlir.Lit(randPhase())})
		case 3:
			if rng.Intn(2) == 0 {
				ops = append(ops, &mlir.DelayOp{Frame: f, Samples: int64(rng.Intn(32))})
			} else {
				ops = append(ops, &mlir.BarrierOp{})
			}
		}
	}
	return ops
}

// TestCanonicalizePreservesAccumulatedPhase: merging/folding frame ops may
// rewrap phases but must preserve each frame's accumulated phase modulo
// 2π, including sums that land exactly on the ±π boundary.
func TestCanonicalizePreservesAccumulatedPhase(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	frames := []mlir.Value{mlir.Ref("f0"), mlir.Ref("f1")}
	for trial := 0; trial < 300; trial++ {
		ops := randomFrameOps(rng, frames, 1+rng.Intn(24))
		before := accumulatedPhase(ops)
		out := canonicalizeOps(ops, nil)
		after := accumulatedPhase(out)
		for _, f := range []string{"f0", "f1"} {
			// The sums may differ only by whole turns, so the wrapped
			// difference must vanish.
			if d := wrap(before[f] - after[f]); math.Abs(d) > 1e-9 {
				t.Fatalf("trial %d frame %s: accumulated phase %g → %g (Δwrap %g)",
					trial, f, before[f], after[f], d)
			}
		}
	}
}

// propertyModule assembles a module over the superconducting device's two
// drive ports and their coupler, with the given sequence ops.
func propertyModule(ops []mlir.Op, defs []*mlir.WaveformDef) *mlir.Module {
	seq := &mlir.Sequence{
		Name: "prop",
		Args: []mlir.Arg{
			{Name: "f0", Type: mlir.TypeMixedFrame},
			{Name: "f1", Type: mlir.TypeMixedFrame},
			{Name: "fc", Type: mlir.TypeMixedFrame},
		},
		ArgPorts: []string{"q0-drive", "q1-drive", "q0q1-coupler"},
		Ops:      append(ops, &mlir.ReturnOp{}),
	}
	return &mlir.Module{WaveformDefs: defs, Sequences: []*mlir.Sequence{seq}}
}

// TestPipelinePreservesScheduleInvariants: random gate programs survive
// the full pipeline (lowering, canonicalization, DCE, legalization) and
// the lowered timing still resolves without port overlap — asserted by
// both the in-pipeline VerifyCalibrationPass and an explicit replay here.
func TestPipelinePreservesScheduleInvariants(t *testing.T) {
	dev, err := devices.Superconducting("prop-sc", 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	oneQ := []string{"x", "y", "sx", "h", "z", "s", "t"}
	frames := []mlir.Value{mlir.Ref("f0"), mlir.Ref("f1")}
	for trial := 0; trial < 40; trial++ {
		var ops []mlir.Op
		for i, n := 0, 1+rng.Intn(10); i < n; i++ {
			switch rng.Intn(4) {
			case 0:
				ops = append(ops, &mlir.StandardGateOp{
					Gate: oneQ[rng.Intn(len(oneQ))], Frames: []mlir.Value{frames[rng.Intn(2)]}})
			case 1:
				g := []string{"rx", "ry", "rz"}[rng.Intn(3)]
				ops = append(ops, &mlir.StandardGateOp{
					Gate: g, Frames: []mlir.Value{frames[rng.Intn(2)]},
					Params: []float64{(rng.Float64() - 0.5) * 6 * math.Pi}})
			case 2:
				ops = append(ops, &mlir.StandardGateOp{
					Gate: "cz", Frames: []mlir.Value{frames[0], frames[1]}})
			case 3:
				ops = append(ops, &mlir.ShiftPhaseOp{
					Frame: frames[rng.Intn(2)], Phase: mlir.Lit(phaseCases[rng.Intn(len(phaseCases))])})
			}
		}
		m := propertyModule(ops, nil)
		if err := DefaultPipeline().Run(m, NewContext(dev)); err != nil {
			t.Fatalf("trial %d: pipeline: %v", trial, err)
		}
		// Explicit replay of the scheduling invariant, independent of the
		// pipeline's own verification pass.
		if _, err := verifyLoweredSequence(m, m.Sequences[0], dev); err != nil {
			t.Fatalf("trial %d: lowered schedule: %v", trial, err)
		}
	}
}

// TestVerifyCalibrationPassCatchesOverAmplitude: a lowered play past the
// port's amplitude limit is a compile-time error, not a device-side one.
func TestVerifyCalibrationPassCatchesOverAmplitude(t *testing.T) {
	dev, err := devices.Superconducting("amp-sc", 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	defs := []*mlir.WaveformDef{{Name: "hot", Spec: waveform.Spec{
		Name: "hot", Samples: [][2]float64{{1.5, 0}, {1.5, 0}, {1.5, 0}, {1.5, 0}},
	}}}
	ops := []mlir.Op{
		&mlir.WaveformRefOp{Result: "w", Waveform: "hot"},
		&mlir.PlayOp{Frame: mlir.Ref("f0"), Waveform: mlir.Ref("w")},
	}
	m := propertyModule(ops, defs)
	err = VerifyCalibrationPass{}.Run(m, NewContext(dev))
	if err == nil {
		t.Fatal("over-amplitude play passed verification")
	}
	if got := fmt.Sprint(err); got == "" {
		t.Fatal("empty error")
	}
}
