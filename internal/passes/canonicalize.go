package passes

import (
	"math"

	"mqsspulse/internal/mlir"
)

// CanonicalizePass simplifies pulse sequences without changing semantics:
//   - consecutive shift_phase ops on one frame merge into one,
//   - consecutive frame_change ops on one frame merge (last frequency wins,
//     phases add),
//   - consecutive delays on one frame merge,
//   - zero-phase shifts and zero-length delays are removed,
//   - adjacent identical barriers deduplicate.
//
// Only literal operands are folded; ops with value references are left
// untouched (their runtime values are unknown at compile time).
type CanonicalizePass struct{}

// Name implements Pass.
func (CanonicalizePass) Name() string { return "canonicalize" }

// Run implements Pass.
func (CanonicalizePass) Run(m *mlir.Module, ctx *Context) error {
	for _, seq := range m.Sequences {
		seq.Ops = canonicalizeOps(seq.Ops, ctx)
	}
	return nil
}

func canonicalizeOps(ops []mlir.Op, ctx *Context) []mlir.Op {
	out := make([]mlir.Op, 0, len(ops))
	removed := 0
	push := func(op mlir.Op) { out = append(out, op) }
	last := func() mlir.Op {
		if len(out) == 0 {
			return nil
		}
		return out[len(out)-1]
	}
	pop := func() { out = out[:len(out)-1] }

	for _, op := range ops {
		switch o := op.(type) {
		case *mlir.ShiftPhaseOp:
			if !o.Phase.IsRef && o.Phase.Expr == nil && o.Phase.Lit == 0 {
				removed++
				continue
			}
			if prev, ok := last().(*mlir.ShiftPhaseOp); ok &&
				prev.Frame == o.Frame && !prev.Phase.IsRef && !o.Phase.IsRef &&
				prev.Phase.Expr == nil && o.Phase.Expr == nil {
				pop()
				sum := wrap(prev.Phase.Lit + o.Phase.Lit)
				removed++
				if sum != 0 {
					push(&mlir.ShiftPhaseOp{Frame: o.Frame, Phase: mlir.Lit(sum)})
				}
				continue
			}
			push(op)
		case *mlir.FrameChangeOp:
			if prev, ok := last().(*mlir.FrameChangeOp); ok &&
				prev.Frame == o.Frame &&
				!prev.Freq.IsRef && !prev.Phase.IsRef && !o.Freq.IsRef && !o.Phase.IsRef &&
				prev.Freq.Expr == nil && prev.Phase.Expr == nil &&
				o.Freq.Expr == nil && o.Phase.Expr == nil {
				pop()
				removed++
				push(&mlir.FrameChangeOp{
					Frame: o.Frame,
					Freq:  o.Freq, // last set_frequency wins
					Phase: mlir.Lit(wrap(prev.Phase.Lit + o.Phase.Lit)),
				})
				continue
			}
			push(op)
		case *mlir.DelayOp:
			if o.SamplesExpr == nil && o.Samples == 0 {
				removed++
				continue
			}
			if prev, ok := last().(*mlir.DelayOp); ok && prev.Frame == o.Frame &&
				prev.SamplesExpr == nil && o.SamplesExpr == nil {
				pop()
				removed++
				push(&mlir.DelayOp{Frame: o.Frame, Samples: prev.Samples + o.Samples})
				continue
			}
			push(op)
		case *mlir.BarrierOp:
			if prev, ok := last().(*mlir.BarrierOp); ok && sameFrames(prev.Frames, o.Frames) {
				removed++
				continue
			}
			push(op)
		default:
			push(op)
		}
	}
	if ctx != nil {
		ctx.Stats["canonicalize.removed"] += removed
	}
	return out
}

func sameFrames(a, b []mlir.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func wrap(p float64) float64 {
	p = math.Mod(p, 2*math.Pi)
	if p > math.Pi {
		p -= 2 * math.Pi
	} else if p <= -math.Pi {
		p += 2 * math.Pi
	}
	return p
}

// DeadWaveformElimPass removes waveform_ref ops whose results are never
// played and module-level waveform defs that are never referenced.
type DeadWaveformElimPass struct{}

// Name implements Pass.
func (DeadWaveformElimPass) Name() string { return "dead-waveform-elim" }

// Run implements Pass.
func (DeadWaveformElimPass) Run(m *mlir.Module, ctx *Context) error {
	removed := 0
	usedDefs := map[string]bool{}
	for _, seq := range m.Sequences {
		// First: which waveform values are played?
		played := map[string]bool{}
		for _, op := range seq.Ops {
			if p, ok := op.(*mlir.PlayOp); ok && p.Waveform.IsRef {
				played[p.Waveform.Ref] = true
			}
		}
		out := make([]mlir.Op, 0, len(seq.Ops))
		for _, op := range seq.Ops {
			if ref, ok := op.(*mlir.WaveformRefOp); ok {
				if !played[ref.Result] {
					removed++
					continue
				}
				usedDefs[ref.Waveform] = true
			}
			out = append(out, op)
		}
		seq.Ops = out
	}
	defs := make([]*mlir.WaveformDef, 0, len(m.WaveformDefs))
	for _, d := range m.WaveformDefs {
		if usedDefs[d.Name] {
			defs = append(defs, d)
		} else {
			removed++
		}
	}
	m.WaveformDefs = defs
	if ctx != nil {
		ctx.Stats["dce.removed"] += removed
	}
	return nil
}
