package passes

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mqsspulse/internal/mlir"
	"mqsspulse/internal/qdmi"
	"mqsspulse/internal/waveform"
)

// GateLoweringPass replaces gate-level pulse.standard_* ops with calibrated
// pulse sequences obtained through QDMI DefaultPulse queries — the
// MLIR-level gate→pulse lowering the paper describes for the MQSS compiler
// (Section 5.2). Virtual-Z gates become shift_phase ops; physical rotations
// become plays of amplitude-scaled calibrated envelopes; two-qubit gates
// become coupler pulses bracketed by barriers.
type GateLoweringPass struct{}

// Name implements Pass.
func (GateLoweringPass) Name() string { return "gate-to-pulse-lowering" }

// Run implements Pass.
func (GateLoweringPass) Run(m *mlir.Module, ctx *Context) error {
	hasGates := false
	for _, seq := range m.Sequences {
		for _, op := range seq.Ops {
			if _, ok := op.(*mlir.StandardGateOp); ok {
				hasGates = true
			}
		}
	}
	if !hasGates {
		return nil
	}
	if ctx == nil || ctx.Device == nil {
		return errors.New("gate lowering requires a target device")
	}
	l := &lowerer{m: m, dev: ctx.Device}
	if err := l.indexPorts(); err != nil {
		return err
	}
	for _, seq := range m.Sequences {
		if err := l.lowerSequence(seq); err != nil {
			return err
		}
	}
	if ctx.Stats != nil {
		ctx.Stats["lowering.gates"] += l.lowered
	}
	return nil
}

type lowerer struct {
	m       *mlir.Module
	dev     qdmi.Device
	lowered int
	nextWf  int
	// portSite maps single-site port IDs to their site.
	portSite map[string]int
	// pairPort maps sorted site pairs to coupler port IDs.
	pairPort map[[2]int]string
}

func (l *lowerer) indexPorts() error {
	l.portSite = map[string]int{}
	l.pairPort = map[[2]int]string{}
	for _, p := range l.dev.Ports() {
		switch len(p.Sites) {
		case 1:
			l.portSite[p.ID] = p.Sites[0]
		case 2:
			a, b := p.Sites[0], p.Sites[1]
			if a > b {
				a, b = b, a
			}
			l.pairPort[[2]int{a, b}] = p.ID
		}
	}
	return nil
}

// freshWaveform installs a waveform def and returns a ref op + value. A
// non-nil amp marks the def as a deferred-binding slot: the stored samples
// are the base envelope, multiplied by the bound expression value.
func (l *lowerer) freshWaveform(w *waveform.Waveform, amp *mlir.ParamExpr) (*mlir.WaveformRefOp, mlir.Value) {
	l.nextWf++
	defName := fmt.Sprintf("lowered_wf_%d", l.nextWf)
	valName := fmt.Sprintf("lw%d", l.nextWf)
	spec := w.ToSpec()
	spec.Name = defName
	l.m.WaveformDefs = append(l.m.WaveformDefs, &mlir.WaveformDef{Name: defName, Spec: spec, AmpExpr: amp})
	return &mlir.WaveformRefOp{Result: valName, Waveform: defName}, mlir.Ref(valName)
}

func (l *lowerer) lowerSequence(seq *mlir.Sequence) error {
	// frame value name → port ID
	framePort := map[string]string{}
	for i, a := range seq.Args {
		if a.Type == mlir.TypeMixedFrame && i < len(seq.ArgPorts) {
			framePort[a.Name] = seq.ArgPorts[i]
		}
	}
	// Candidate scans walk frame args in sorted-name order: when several
	// args qualify (two frames on one port) the choice must be byte-stable
	// run to run — the lowering cache, the 50×-determinism contract, and
	// the remote calibration-epoch check all assume identical payloads for
	// identical inputs, and Go map iteration order would break that.
	frameNames := sortedKeys(framePort)
	frameForSite := func(site int) (mlir.Value, error) {
		for _, name := range frameNames {
			port := framePort[name]
			if s, ok := l.portSite[port]; ok && s == site {
				if kindOfPort(l.dev, port) == "drive" {
					return mlir.Ref(name), nil
				}
			}
		}
		return mlir.Value{}, fmt.Errorf("no drive frame arg for site %d", site)
	}

	var out []mlir.Op
	for _, op := range seq.Ops {
		g, ok := op.(*mlir.StandardGateOp)
		if !ok {
			out = append(out, op)
			continue
		}
		ops, err := l.lowerGate(seq, framePort, frameNames, frameForSite, g)
		if err != nil {
			return fmt.Errorf("lowering %s: %w", g.OpName(), err)
		}
		out = append(out, ops...)
		l.lowered++
	}
	seq.Ops = out
	return nil
}

// sortedKeys returns a map's keys in sorted order, for deterministic scans.
func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func kindOfPort(dev qdmi.Device, portID string) string {
	v, err := dev.QueryPortProperty(portID, qdmi.PortPropKind)
	if err != nil {
		return ""
	}
	if s, ok := v.(fmt.Stringer); ok {
		return s.String()
	}
	return ""
}

// xEnvelope fetches the calibrated π-pulse envelope for a site.
func (l *lowerer) xEnvelope(site int) (*waveform.Waveform, error) {
	impl, err := l.dev.DefaultPulse("x", []int{site})
	if err != nil {
		return nil, err
	}
	for _, st := range impl.Steps {
		if st.Kind == "play" && st.Waveform != nil {
			return st.Waveform.Materialize()
		}
	}
	return nil, fmt.Errorf("x impl has no play step")
}

// rotation emits the ops for a rotation of `angle` about the equatorial
// axis at `axisPhase` on the frame of `site`.
func (l *lowerer) rotation(frame mlir.Value, site int, angle, axisPhase float64) ([]mlir.Op, error) {
	if angle < 0 {
		angle, axisPhase = -angle, axisPhase+math.Pi
	}
	// Normalize before the no-op test: rx(2π) is a full rotation, not a
	// zero-amplitude play that still consumes schedule time.
	angle = math.Mod(angle, 2*math.Pi)
	if angle == 0 {
		return nil, nil
	}
	if angle > math.Pi {
		angle, axisPhase = 2*math.Pi-angle, axisPhase+math.Pi
	}
	env, err := l.xEnvelope(site)
	if err != nil {
		return nil, err
	}
	// angle*(1/π), not angle/π: the symbolic path folds 1/π into the
	// expression's Scale coefficient, and x*(1/π) is the bit-exact product
	// that path reproduces at bind time — keeping bound payloads
	// byte-identical to per-point-compiled ones.
	scaled, err := env.Scale(complex(angle*(1/math.Pi), 0))
	if err != nil {
		return nil, err
	}
	refOp, val := l.freshWaveform(scaled, nil)
	var ops []mlir.Op
	if axisPhase != 0 {
		ops = append(ops, &mlir.ShiftPhaseOp{Frame: frame, Phase: mlir.Lit(wrap(axisPhase))})
	}
	ops = append(ops, refOp, &mlir.PlayOp{Frame: frame, Waveform: val})
	if axisPhase != 0 {
		ops = append(ops, &mlir.ShiftPhaseOp{Frame: frame, Phase: mlir.Lit(wrap(-axisPhase))})
	}
	return ops, nil
}

// rotationSym is the deferred-binding analogue of rotation: the drive
// amplitude becomes an unbound slot scaling the calibrated π envelope. The
// symbolic angle carries no normalization (sign flip, mod 2π, >π fold), so
// template compilation restricts symbolic rx/ry angles to (0, π] — the
// interval on which the concrete path applies no normalization either,
// keeping bind(θ) byte-identical to a fresh compile at θ.
func (l *lowerer) rotationSym(frame mlir.Value, site int, angle *mlir.ParamExpr, axisPhase float64) ([]mlir.Op, error) {
	env, err := l.xEnvelope(site)
	if err != nil {
		return nil, err
	}
	amp := &mlir.ParamExpr{
		Param:  angle.Param,
		Scale:  angle.Scale * (1 / math.Pi),
		Offset: angle.Offset * (1 / math.Pi),
	}
	refOp, val := l.freshWaveform(env, amp)
	var ops []mlir.Op
	if axisPhase != 0 {
		ops = append(ops, &mlir.ShiftPhaseOp{Frame: frame, Phase: mlir.Lit(wrap(axisPhase))})
	}
	ops = append(ops, refOp, &mlir.PlayOp{Frame: frame, Waveform: val})
	if axisPhase != 0 {
		ops = append(ops, &mlir.ShiftPhaseOp{Frame: frame, Phase: mlir.Lit(wrap(-axisPhase))})
	}
	return ops, nil
}

func (l *lowerer) lowerGate(seq *mlir.Sequence, framePort map[string]string, frameNames []string,
	frameForSite func(int) (mlir.Value, error), g *mlir.StandardGateOp) ([]mlir.Op, error) {

	siteOf := func(fv mlir.Value) (int, error) {
		port, ok := framePort[fv.Ref]
		if !ok {
			return 0, fmt.Errorf("frame %%%s has no port binding", fv.Ref)
		}
		site, ok := l.portSite[port]
		if !ok {
			return 0, fmt.Errorf("port %s has no single site", port)
		}
		return site, nil
	}
	theta := 0.0
	if len(g.Params) > 0 {
		theta = g.Params[0]
	}
	var thetaExpr *mlir.ParamExpr
	if len(g.ParamExprs) > 0 {
		thetaExpr = g.ParamExprs[0]
	}
	if thetaExpr != nil {
		switch g.Gate {
		case "rx", "ry", "rz":
		default:
			return nil, fmt.Errorf("gate %q does not accept a symbolic angle", g.Gate)
		}
	}
	oneQubit := func() (mlir.Value, int, error) {
		if len(g.Frames) != 1 {
			return mlir.Value{}, 0, fmt.Errorf("gate %s arity mismatch", g.Gate)
		}
		site, err := siteOf(g.Frames[0])
		return g.Frames[0], site, err
	}

	switch g.Gate {
	case "x":
		f, site, err := oneQubit()
		if err != nil {
			return nil, err
		}
		return l.rotation(f, site, math.Pi, 0)
	case "y":
		f, site, err := oneQubit()
		if err != nil {
			return nil, err
		}
		return l.rotation(f, site, math.Pi, math.Pi/2)
	case "sx":
		f, site, err := oneQubit()
		if err != nil {
			return nil, err
		}
		return l.rotation(f, site, math.Pi/2, 0)
	case "rx":
		f, site, err := oneQubit()
		if err != nil {
			return nil, err
		}
		if thetaExpr != nil {
			return l.rotationSym(f, site, thetaExpr, 0)
		}
		return l.rotation(f, site, theta, 0)
	case "ry":
		f, site, err := oneQubit()
		if err != nil {
			return nil, err
		}
		if thetaExpr != nil {
			return l.rotationSym(f, site, thetaExpr, math.Pi/2)
		}
		return l.rotation(f, site, theta, math.Pi/2)
	case "z", "s", "t", "rz":
		f, _, err := oneQubit()
		if err != nil {
			return nil, err
		}
		if thetaExpr != nil {
			// Virtual Z with a symbolic angle: the phase slot stays unbound
			// (negated, unwrapped — phase accumulation is mod 2π downstream).
			return []mlir.Op{&mlir.ShiftPhaseOp{Frame: f, Phase: mlir.ExprVal(thetaExpr.Neg())}}, nil
		}
		phase := map[string]float64{"z": math.Pi, "s": math.Pi / 2, "t": math.Pi / 4, "rz": theta}[g.Gate]
		if phase == 0 {
			return nil, nil
		}
		// Virtual Z: RZ(θ) commutes past later pulses as a −θ phase shift.
		return []mlir.Op{&mlir.ShiftPhaseOp{Frame: f, Phase: mlir.Lit(wrap(-phase))}}, nil
	case "cz", "cx":
		if len(g.Frames) != 2 {
			return nil, fmt.Errorf("gate %s arity mismatch", g.Gate)
		}
		sa, err := siteOf(g.Frames[0])
		if err != nil {
			return nil, err
		}
		sb, err := siteOf(g.Frames[1])
		if err != nil {
			return nil, err
		}
		a, b := sa, sb
		if a > b {
			a, b = b, a
		}
		couplerPort, ok := l.pairPort[[2]int{a, b}]
		if !ok {
			return nil, fmt.Errorf("no coupler between sites %d and %d", sa, sb)
		}
		// Find the coupler frame arg (sorted scan: deterministic when
		// several frame args bind the coupler port).
		var couplerFrame mlir.Value
		found := false
		for _, name := range frameNames {
			if framePort[name] == couplerPort {
				couplerFrame = mlir.Ref(name)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("sequence has no frame arg for coupler port %s", couplerPort)
		}
		impl, err := l.dev.DefaultPulse("cz", []int{a, b})
		if err != nil {
			return nil, err
		}
		var czOps []mlir.Op
		barrier := &mlir.BarrierOp{Frames: []mlir.Value{g.Frames[0], g.Frames[1], couplerFrame}}
		for _, st := range impl.Steps {
			switch st.Kind {
			case "barrier":
				czOps = append(czOps, barrier)
			case "play":
				w, err := st.Waveform.Materialize()
				if err != nil {
					return nil, err
				}
				refOp, val := l.freshWaveform(w, nil)
				czOps = append(czOps, refOp, &mlir.PlayOp{Frame: couplerFrame, Waveform: val})
			case "shift_phase":
				czOps = append(czOps, &mlir.ShiftPhaseOp{Frame: couplerFrame, Phase: mlir.Lit(st.PhaseRad)})
			default:
				return nil, fmt.Errorf("cz impl step %q unsupported at IR level", st.Kind)
			}
		}
		if g.Gate == "cz" {
			return czOps, nil
		}
		// cx = (I⊗H)·CZ·(I⊗H): lower the H sandwich on the target frame.
		hPre, err := l.lowerGate(seq, framePort, frameNames, frameForSite, &mlir.StandardGateOp{Gate: "h", Frames: []mlir.Value{g.Frames[1]}})
		if err != nil {
			return nil, err
		}
		hPost, err := l.lowerGate(seq, framePort, frameNames, frameForSite, &mlir.StandardGateOp{Gate: "h", Frames: []mlir.Value{g.Frames[1]}})
		if err != nil {
			return nil, err
		}
		var all []mlir.Op
		all = append(all, hPre...)
		all = append(all, czOps...)
		all = append(all, hPost...)
		return all, nil
	case "h":
		f, site, err := oneQubit()
		if err != nil {
			return nil, err
		}
		// H ∝ RZ(π/2)·RX(π/2)·RZ(π/2), each RZ realized as a −π/2 virtual-Z
		// frame shift.
		sxOps, err := l.rotation(f, site, math.Pi/2, 0)
		if err != nil {
			return nil, err
		}
		out := []mlir.Op{&mlir.ShiftPhaseOp{Frame: f, Phase: mlir.Lit(-math.Pi / 2)}}
		out = append(out, sxOps...)
		out = append(out, &mlir.ShiftPhaseOp{Frame: f, Phase: mlir.Lit(-math.Pi / 2)})
		return out, nil
	default:
		return nil, fmt.Errorf("no lowering for gate %q", g.Gate)
	}
}

// LegalizePass enforces the target's waveform constraints: every waveform
// def is materialized, padded to the device granularity and minimum length,
// and rejected if it exceeds the maximum — the JIT-time constraint check
// the paper routes through QDMI queries (Section 5.3).
type LegalizePass struct{}

// Name implements Pass.
func (LegalizePass) Name() string { return "legalize-hardware-constraints" }

// Run implements Pass.
func (LegalizePass) Run(m *mlir.Module, ctx *Context) error {
	if ctx == nil || ctx.Device == nil {
		return nil // target-independent compilation skips legalization
	}
	gran, err := qdmi.QueryInt(ctx.Device, qdmi.DevicePropGranularity)
	if err != nil {
		gran = 1
	}
	minS, err := qdmi.QueryInt(ctx.Device, qdmi.DevicePropMinPulseSamples)
	if err != nil {
		minS = 0
	}
	maxS, err := qdmi.QueryInt(ctx.Device, qdmi.DevicePropMaxPulseSamples)
	if err != nil {
		maxS = 0
	}
	padded := 0
	for _, def := range m.WaveformDefs {
		w, err := def.Spec.Materialize()
		if err != nil {
			return err
		}
		orig := w.Len()
		if maxS > 0 && orig > maxS {
			return fmt.Errorf("waveform %s has %d samples, device maximum is %d", def.Name, orig, maxS)
		}
		if w.Len() < minS {
			w = w.Concat(mustZero(minS - w.Len()))
		}
		w = w.PadTo(gran)
		if w.Len() != orig {
			spec := w.ToSpec()
			spec.Name = def.Name
			def.Spec = spec
			padded++
		}
	}
	if ctx.Stats != nil {
		ctx.Stats["legalize.padded"] += padded
	}
	return nil
}

func mustZero(n int) *waveform.Waveform {
	w, err := waveform.New("pad", make([]complex128, n))
	if err != nil {
		panic(err)
	}
	return w
}
