package mlir

import "fmt"

// ParamExpr is an affine symbolic expression over one named template
// parameter (value = Scale·p + Offset) — the dialect-level form of an
// unbound pulse-parameter slot. Lowering passes may rescale or negate the
// expression but never evaluate it; evaluation happens at bind time on the
// QIR module the backend emits.
type ParamExpr struct {
	// Param is the template parameter name.
	Param string
	// Scale multiplies the bound parameter value.
	Scale float64
	// Offset is added after scaling.
	Offset float64
}

// Eval evaluates the expression at parameter value p.
func (e *ParamExpr) Eval(p float64) float64 { return e.Scale*p + e.Offset }

// Neg returns the negated expression (−Scale, −Offset), used when a
// lowering flips a slot's sign (e.g. the virtual-Z phase of rz).
func (e *ParamExpr) Neg() *ParamExpr {
	return &ParamExpr{Param: e.Param, Scale: -e.Scale, Offset: -e.Offset}
}

// String renders the expression in the textual form used by the printer.
func (e *ParamExpr) String() string {
	return fmt.Sprintf("param<%g*%s%+g>", e.Scale, e.Param, e.Offset)
}

// ExprVal makes an operand carrying an unbound parameter expression.
func ExprVal(e *ParamExpr) Value { return Value{Expr: e} }
