package mlir

import (
	"fmt"
	"strings"

	"mqsspulse/internal/waveform"
)

// WaveformDef is a module-level waveform symbol (pulse.def @name in the
// paper's Listing 2), carrying either explicit samples or a parametric
// envelope spec.
type WaveformDef struct {
	Name string
	Spec waveform.Spec
	// AmpExpr, when non-nil, marks the definition as an unbound template
	// slot: the stored samples are the base envelope, multiplied by the
	// expression's bound value at bind time. Legalization (padding) applies
	// to the base samples and preserves the slot.
	AmpExpr *ParamExpr
}

// Sequence is a pulse.sequence: the pulse-level analogue of a function. Its
// mixed-frame arguments carry a port-binding attribute (pulse.argPorts in
// the paper) that the backend uses to map frames onto hardware channels.
type Sequence struct {
	Name string
	Args []Arg
	// ArgPorts parallels Args: for mixed-frame args the bound port ID, ""
	// for scalar args (matching the paper's pulse.argPorts attribute).
	ArgPorts []string
	// Results are the sequence result types (i1 per measured bit).
	Results []Type
	Ops     []Op
}

// Module is a top-level MLIR module holding waveform defs and sequences.
type Module struct {
	WaveformDefs []*WaveformDef
	Sequences    []*Sequence
}

// FindWaveform returns the named waveform def.
func (m *Module) FindWaveform(name string) (*WaveformDef, bool) {
	for _, w := range m.WaveformDefs {
		if w.Name == name {
			return w, true
		}
	}
	return nil, false
}

// FindSequence returns the named sequence.
func (m *Module) FindSequence(name string) (*Sequence, bool) {
	for _, s := range m.Sequences {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}

// OpCount returns the total op count across sequences (pass statistics).
func (m *Module) OpCount() int {
	n := 0
	for _, s := range m.Sequences {
		n += len(s.Ops)
	}
	return n
}

// Verify checks module-level and sequence-level structural invariants:
// unique symbols, defined value uses, type sanity, single terminator.
func (m *Module) Verify() error {
	seen := map[string]bool{}
	for _, w := range m.WaveformDefs {
		if w.Name == "" {
			return fmt.Errorf("mlir: waveform def with empty name")
		}
		if seen[w.Name] {
			return fmt.Errorf("mlir: duplicate waveform def @%s", w.Name)
		}
		seen[w.Name] = true
		if _, err := w.Spec.Materialize(); err != nil {
			return fmt.Errorf("mlir: waveform def @%s: %w", w.Name, err)
		}
	}
	seqSeen := map[string]bool{}
	for _, s := range m.Sequences {
		if s.Name == "" {
			return fmt.Errorf("mlir: sequence with empty name")
		}
		if seqSeen[s.Name] {
			return fmt.Errorf("mlir: duplicate sequence @%s", s.Name)
		}
		seqSeen[s.Name] = true
		if err := m.verifySequence(s); err != nil {
			return fmt.Errorf("mlir: sequence @%s: %w", s.Name, err)
		}
	}
	return nil
}

func (m *Module) verifySequence(s *Sequence) error {
	if len(s.ArgPorts) != 0 && len(s.ArgPorts) != len(s.Args) {
		return fmt.Errorf("argPorts length %d != args length %d", len(s.ArgPorts), len(s.Args))
	}
	types := map[string]Type{}
	for i, a := range s.Args {
		if a.Name == "" {
			return fmt.Errorf("arg %d has empty name", i)
		}
		if _, dup := types[a.Name]; dup {
			return fmt.Errorf("duplicate arg %%%s", a.Name)
		}
		types[a.Name] = a.Type
		if len(s.ArgPorts) > 0 {
			if a.Type == TypeMixedFrame && s.ArgPorts[i] == "" {
				return fmt.Errorf("mixed-frame arg %%%s has no port binding", a.Name)
			}
			if a.Type != TypeMixedFrame && s.ArgPorts[i] != "" {
				return fmt.Errorf("scalar arg %%%s has a port binding", a.Name)
			}
		}
	}

	checkFrame := func(v Value) error {
		if v.Expr != nil {
			return fmt.Errorf("frame operand cannot be a parameter expression")
		}
		if !v.IsRef {
			return fmt.Errorf("frame operand must be a value reference, got literal %g", v.Lit)
		}
		ty, ok := types[v.Ref]
		if !ok {
			return fmt.Errorf("use of undefined value %%%s", v.Ref)
		}
		if ty != TypeMixedFrame {
			return fmt.Errorf("%%%s is %s, expected %s", v.Ref, ty, TypeMixedFrame)
		}
		return nil
	}
	checkF64 := func(v Value) error {
		if v.Expr != nil {
			if v.IsRef {
				return fmt.Errorf("operand is both a value reference and a parameter expression")
			}
			if v.Expr.Param == "" {
				return fmt.Errorf("parameter expression with empty parameter name")
			}
			return nil
		}
		if !v.IsRef {
			return nil
		}
		ty, ok := types[v.Ref]
		if !ok {
			return fmt.Errorf("use of undefined value %%%s", v.Ref)
		}
		if ty != TypeF64 {
			return fmt.Errorf("%%%s is %s, expected f64", v.Ref, ty)
		}
		return nil
	}

	waveformValues := map[string]bool{}
	sawReturn := false
	for oi, op := range s.Ops {
		if sawReturn {
			return fmt.Errorf("op %d (%s) after terminator", oi, op.OpName())
		}
		switch o := op.(type) {
		case *StandardGateOp:
			if len(o.Frames) == 0 {
				return fmt.Errorf("op %d: gate with no frames", oi)
			}
			if len(o.ParamExprs) > len(o.Params) {
				return fmt.Errorf("op %d: %d param exprs for %d params", oi, len(o.ParamExprs), len(o.Params))
			}
			for _, f := range o.Frames {
				if err := checkFrame(f); err != nil {
					return fmt.Errorf("op %d: %w", oi, err)
				}
			}
		case *WaveformRefOp:
			if o.Result == "" {
				return fmt.Errorf("op %d: waveform_ref with empty result", oi)
			}
			if _, dup := types[o.Result]; dup {
				return fmt.Errorf("op %d: redefinition of %%%s", oi, o.Result)
			}
			if _, ok := m.FindWaveform(o.Waveform); !ok {
				return fmt.Errorf("op %d: reference to undefined waveform @%s", oi, o.Waveform)
			}
			types[o.Result] = TypeWaveform
			waveformValues[o.Result] = true
		case *PlayOp:
			if err := checkFrame(o.Frame); err != nil {
				return fmt.Errorf("op %d: %w", oi, err)
			}
			if !o.Waveform.IsRef || !waveformValues[o.Waveform.Ref] {
				return fmt.Errorf("op %d: play operand %s is not a waveform value", oi, o.Waveform)
			}
		case *FrameChangeOp:
			if err := checkFrame(o.Frame); err != nil {
				return fmt.Errorf("op %d: %w", oi, err)
			}
			if err := checkF64(o.Freq); err != nil {
				return fmt.Errorf("op %d: %w", oi, err)
			}
			if err := checkF64(o.Phase); err != nil {
				return fmt.Errorf("op %d: %w", oi, err)
			}
		case *ShiftPhaseOp:
			if err := checkFrame(o.Frame); err != nil {
				return fmt.Errorf("op %d: %w", oi, err)
			}
			if err := checkF64(o.Phase); err != nil {
				return fmt.Errorf("op %d: %w", oi, err)
			}
		case *SetPhaseOp:
			if err := checkFrame(o.Frame); err != nil {
				return fmt.Errorf("op %d: %w", oi, err)
			}
			if err := checkF64(o.Phase); err != nil {
				return fmt.Errorf("op %d: %w", oi, err)
			}
		case *ShiftFrequencyOp:
			if err := checkFrame(o.Frame); err != nil {
				return fmt.Errorf("op %d: %w", oi, err)
			}
			if err := checkF64(o.Freq); err != nil {
				return fmt.Errorf("op %d: %w", oi, err)
			}
		case *SetFrequencyOp:
			if err := checkFrame(o.Frame); err != nil {
				return fmt.Errorf("op %d: %w", oi, err)
			}
			if err := checkF64(o.Freq); err != nil {
				return fmt.Errorf("op %d: %w", oi, err)
			}
		case *DelayOp:
			if err := checkFrame(o.Frame); err != nil {
				return fmt.Errorf("op %d: %w", oi, err)
			}
			if o.SamplesExpr != nil {
				if o.SamplesExpr.Param == "" {
					return fmt.Errorf("op %d: delay parameter expression with empty name", oi)
				}
			} else if o.Samples < 0 {
				return fmt.Errorf("op %d: negative delay", oi)
			}
		case *BarrierOp:
			for _, f := range o.Frames {
				if err := checkFrame(f); err != nil {
					return fmt.Errorf("op %d: %w", oi, err)
				}
			}
		case *CaptureOp:
			if o.Result == "" {
				return fmt.Errorf("op %d: capture with empty result", oi)
			}
			if _, dup := types[o.Result]; dup {
				return fmt.Errorf("op %d: redefinition of %%%s", oi, o.Result)
			}
			if err := checkFrame(o.Frame); err != nil {
				return fmt.Errorf("op %d: %w", oi, err)
			}
			if o.Samples <= 0 {
				return fmt.Errorf("op %d: capture with non-positive window", oi)
			}
			types[o.Result] = TypeI1
		case *ReturnOp:
			if len(o.Values) != len(s.Results) {
				return fmt.Errorf("op %d: return of %d values, sequence declares %d results",
					oi, len(o.Values), len(s.Results))
			}
			for vi, v := range o.Values {
				if !v.IsRef {
					return fmt.Errorf("op %d: return operand %d must be a value reference", oi, vi)
				}
				ty, ok := types[v.Ref]
				if !ok {
					return fmt.Errorf("op %d: return of undefined %%%s", oi, v.Ref)
				}
				if ty != s.Results[vi] {
					return fmt.Errorf("op %d: return operand %d is %s, want %s", oi, vi, ty, s.Results[vi])
				}
			}
			sawReturn = true
		default:
			return fmt.Errorf("op %d: unknown op type %T", oi, op)
		}
	}
	if !sawReturn {
		return fmt.Errorf("missing pulse.return terminator")
	}
	return nil
}

// Print renders the module in its textual format.
func (m *Module) Print() string {
	var sb strings.Builder
	sb.WriteString("module {\n")
	for _, w := range m.WaveformDefs {
		sb.WriteString("  " + renderWaveformDef(w) + "\n")
	}
	for _, s := range m.Sequences {
		printSequence(&sb, s)
	}
	sb.WriteString("}\n")
	return sb.String()
}

func renderWaveformDef(w *WaveformDef) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pulse.def @%s", w.Name)
	if w.AmpExpr != nil {
		fmt.Fprintf(&sb, " amp = %s", w.AmpExpr)
	}
	if w.Spec.Kind != "" {
		fmt.Fprintf(&sb, " kind = %q length = %d params = {", w.Spec.Kind, w.Spec.Length)
		first := true
		for _, k := range sortedKeys(w.Spec.Params) {
			if !first {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%s = %g", k, w.Spec.Params[k])
			first = false
		}
		sb.WriteString("}")
		return sb.String()
	}
	sb.WriteString(" samples = [")
	for i, p := range w.Spec.Samples {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%g, %g)", p[0], p[1])
	}
	sb.WriteString("]")
	return sb.String()
}

func printSequence(sb *strings.Builder, s *Sequence) {
	fmt.Fprintf(sb, "  pulse.sequence @%s(", s.Name)
	for i, a := range s.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(sb, "%%%s: %s", a.Name, a.Type)
	}
	sb.WriteString(")")
	if len(s.Results) > 0 {
		sb.WriteString(" -> (")
		for i, r := range s.Results {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(r.String())
		}
		sb.WriteString(")")
	}
	if len(s.ArgPorts) > 0 {
		sb.WriteString(" ports = [")
		for i, p := range s.ArgPorts {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(sb, "%q", p)
		}
		sb.WriteString("]")
	}
	sb.WriteString(" {\n")
	for _, op := range s.Ops {
		fmt.Fprintf(sb, "    %s\n", op.Render())
	}
	sb.WriteString("  }\n")
}

func sortedKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && ks[j] < ks[j-1]; j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
	return ks
}
