package mlir

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"mqsspulse/internal/waveform"
)

// Parse reads the textual module format produced by Module.Print. The
// grammar is line-free: tokens may be separated by any whitespace.
func Parse(src string) (*Module, error) {
	p := &parser{toks: tokenize(src)}
	m, err := p.parseModule()
	if err != nil {
		return nil, fmt.Errorf("mlir: parse: %w", err)
	}
	return m, nil
}

type token struct {
	kind tokKind
	text string
}

type tokKind int

const (
	tokIdent  tokKind = iota // identifiers, keywords, op names (with dots)
	tokSymbol                // @name
	tokValue                 // %name
	tokNumber
	tokString
	tokPunct // ( ) { } [ ] , = : -> !type handled as ident with '!'
	tokEOF
)

func tokenize(src string) []token {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case unicode.IsSpace(rune(c)):
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '@' || c == '%':
			j := i + 1
			for j < n && isIdentChar(src[j]) {
				j++
			}
			kind := tokSymbol
			if c == '%' {
				kind = tokValue
			}
			toks = append(toks, token{kind, src[i+1 : j]})
			i = j
		case c == '"':
			j := i + 1
			for j < n && src[j] != '"' {
				j++
			}
			toks = append(toks, token{tokString, src[i+1 : j]})
			i = j + 1
		case c == '-' && i+1 < n && src[i+1] == '>':
			toks = append(toks, token{tokPunct, "->"})
			i += 2
		case strings.ContainsRune("(){}[],=:", rune(c)):
			toks = append(toks, token{tokPunct, string(c)})
			i++
		case isDigit(c) || ((c == '-' || c == '+') && i+1 < n && (isDigit(src[i+1]) || src[i+1] == '.')):
			j := scanNumber(src, i)
			toks = append(toks, token{tokNumber, src[i:j]})
			i = j
		case c == '!' || c == '_' || isLetter(c):
			j := i
			if c == '!' {
				j++
			}
			for j < n && (isIdentChar(src[j]) || src[j] == '.') {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j]})
			i = j
		default:
			toks = append(toks, token{tokPunct, string(c)})
			i++
		}
	}
	toks = append(toks, token{tokEOF, ""})
	return toks
}

func isIdentChar(c byte) bool {
	return c == '_' || isLetter(c) || isDigit(c)
}

func isLetter(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }
func isDigit(c byte) bool  { return c >= '0' && c <= '9' }

// scanNumber consumes a float literal starting at i, including exponent
// forms like 5.1e+09 that %g emits.
func scanNumber(src string, i int) int {
	n := len(src)
	j := i
	if src[j] == '-' || src[j] == '+' {
		j++
	}
	for j < n && (isDigit(src[j]) || src[j] == '.') {
		j++
	}
	if j < n && (src[j] == 'e' || src[j] == 'E') {
		k := j + 1
		if k < n && (src[k] == '+' || src[k] == '-') {
			k++
		}
		if k < n && isDigit(src[k]) {
			j = k
			for j < n && isDigit(src[j]) {
				j++
			}
		}
	}
	return j
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf(format+" (near token %d %q)", append(args, p.pos, p.peek().text)...)
}

func (p *parser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tokPunct || t.text != s {
		p.pos--
		return p.errf("expected %q", s)
	}
	return nil
}

func (p *parser) expectIdent(s string) error {
	t := p.next()
	if t.kind != tokIdent || t.text != s {
		p.pos--
		return p.errf("expected keyword %q", s)
	}
	return nil
}

func (p *parser) parseModule() (*Module, error) {
	if err := p.expectIdent("module"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	m := &Module{}
	for {
		t := p.peek()
		if t.kind == tokPunct && t.text == "}" {
			p.next()
			break
		}
		if t.kind == tokEOF {
			return nil, p.errf("unterminated module")
		}
		if t.kind != tokIdent {
			return nil, p.errf("expected pulse.def or pulse.sequence")
		}
		switch t.text {
		case "pulse.def":
			w, err := p.parseWaveformDef()
			if err != nil {
				return nil, err
			}
			m.WaveformDefs = append(m.WaveformDefs, w)
		case "pulse.sequence":
			s, err := p.parseSequence()
			if err != nil {
				return nil, err
			}
			m.Sequences = append(m.Sequences, s)
		default:
			return nil, p.errf("unexpected top-level %q", t.text)
		}
	}
	return m, nil
}

func (p *parser) parseWaveformDef() (*WaveformDef, error) {
	p.next() // pulse.def
	sym := p.next()
	if sym.kind != tokSymbol {
		return nil, p.errf("expected @symbol after pulse.def")
	}
	w := &WaveformDef{Name: sym.text, Spec: waveform.Spec{Name: sym.text}}
	switch p.peek().text {
	case "kind":
		p.next()
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		k := p.next()
		if k.kind != tokString {
			return nil, p.errf("expected string envelope kind")
		}
		w.Spec.Kind = k.text
		if err := p.expectIdent("length"); err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		ln, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		w.Spec.Length = int(ln)
		if err := p.expectIdent("params"); err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		if err := p.expectPunct("{"); err != nil {
			return nil, err
		}
		w.Spec.Params = map[string]float64{}
		for {
			if p.peek().text == "}" {
				p.next()
				break
			}
			key := p.next()
			if key.kind != tokIdent {
				return nil, p.errf("expected param name")
			}
			if err := p.expectPunct("="); err != nil {
				return nil, err
			}
			v, err := p.parseFloat()
			if err != nil {
				return nil, err
			}
			w.Spec.Params[key.text] = v
			if p.peek().text == "," {
				p.next()
			}
		}
	case "samples":
		p.next()
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		if err := p.expectPunct("["); err != nil {
			return nil, err
		}
		for {
			if p.peek().text == "]" {
				p.next()
				break
			}
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			re, err := p.parseFloat()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
			im, err := p.parseFloat()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			w.Spec.Samples = append(w.Spec.Samples, [2]float64{re, im})
			if p.peek().text == "," {
				p.next()
			}
		}
	default:
		return nil, p.errf("expected kind= or samples= in pulse.def")
	}
	return w, nil
}

func (p *parser) parseSequence() (*Sequence, error) {
	p.next() // pulse.sequence
	sym := p.next()
	if sym.kind != tokSymbol {
		return nil, p.errf("expected @symbol after pulse.sequence")
	}
	s := &Sequence{Name: sym.text}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		if p.peek().text == ")" {
			p.next()
			break
		}
		v := p.next()
		if v.kind != tokValue {
			return nil, p.errf("expected %%arg name")
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		tt := p.next()
		ty, err := ParseType(tt.text)
		if err != nil {
			return nil, err
		}
		s.Args = append(s.Args, Arg{Name: v.text, Type: ty})
		if p.peek().text == "," {
			p.next()
		}
	}
	if p.peek().text == "->" {
		p.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		for {
			if p.peek().text == ")" {
				p.next()
				break
			}
			tt := p.next()
			ty, err := ParseType(tt.text)
			if err != nil {
				return nil, err
			}
			s.Results = append(s.Results, ty)
			if p.peek().text == "," {
				p.next()
			}
		}
	}
	if p.peek().text == "ports" {
		p.next()
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		if err := p.expectPunct("["); err != nil {
			return nil, err
		}
		for {
			if p.peek().text == "]" {
				p.next()
				break
			}
			t := p.next()
			if t.kind != tokString {
				return nil, p.errf("expected string port name")
			}
			s.ArgPorts = append(s.ArgPorts, t.text)
			if p.peek().text == "," {
				p.next()
			}
		}
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for {
		if p.peek().text == "}" {
			p.next()
			break
		}
		op, err := p.parseOp()
		if err != nil {
			return nil, err
		}
		s.Ops = append(s.Ops, op)
	}
	return s, nil
}

func (p *parser) parseOp() (Op, error) {
	t := p.next()
	// Result-producing form: %name = op ...
	if t.kind == tokValue {
		result := t.text
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		opTok := p.next()
		switch opTok.text {
		case "pulse.waveform_ref":
			sym := p.next()
			if sym.kind != tokSymbol {
				return nil, p.errf("expected @waveform symbol")
			}
			return &WaveformRefOp{Result: result, Waveform: sym.text}, nil
		case "pulse.capture":
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			frame, err := p.parseValue()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
			n, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &CaptureOp{Result: result, Frame: frame, Samples: n}, nil
		default:
			return nil, p.errf("unknown result-producing op %q", opTok.text)
		}
	}
	if t.kind != tokIdent {
		return nil, p.errf("expected op name")
	}
	switch {
	case t.text == "pulse.play":
		vals, err := p.parseValueList(2)
		if err != nil {
			return nil, err
		}
		return &PlayOp{Frame: vals[0], Waveform: vals[1]}, nil
	case t.text == "pulse.frame_change":
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		frame, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		if err := p.expectIdent("freq"); err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		freq, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		if err := p.expectIdent("phase"); err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		phase, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &FrameChangeOp{Frame: frame, Freq: freq, Phase: phase}, nil
	case t.text == "pulse.shift_phase", t.text == "pulse.set_phase",
		t.text == "pulse.shift_frequency", t.text == "pulse.set_frequency":
		vals, err := p.parseValueList(2)
		if err != nil {
			return nil, err
		}
		switch t.text {
		case "pulse.shift_phase":
			return &ShiftPhaseOp{Frame: vals[0], Phase: vals[1]}, nil
		case "pulse.set_phase":
			return &SetPhaseOp{Frame: vals[0], Phase: vals[1]}, nil
		case "pulse.shift_frequency":
			return &ShiftFrequencyOp{Frame: vals[0], Freq: vals[1]}, nil
		default:
			return &SetFrequencyOp{Frame: vals[0], Freq: vals[1]}, nil
		}
	case t.text == "pulse.delay":
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		frame, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &DelayOp{Frame: frame, Samples: n}, nil
	case t.text == "pulse.barrier":
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var frames []Value
		for {
			if p.peek().text == ")" {
				p.next()
				break
			}
			v, err := p.parseValue()
			if err != nil {
				return nil, err
			}
			frames = append(frames, v)
			if p.peek().text == "," {
				p.next()
			}
		}
		return &BarrierOp{Frames: frames}, nil
	case t.text == "pulse.return":
		var vals []Value
		for p.peek().kind == tokValue {
			vals = append(vals, Ref(p.next().text))
			if p.peek().text == "," {
				p.next()
			}
		}
		return &ReturnOp{Values: vals}, nil
	case strings.HasPrefix(t.text, "pulse.standard_"):
		gate := strings.TrimPrefix(t.text, "pulse.standard_")
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var frames []Value
		for {
			if p.peek().text == ")" {
				p.next()
				break
			}
			v, err := p.parseValue()
			if err != nil {
				return nil, err
			}
			frames = append(frames, v)
			if p.peek().text == "," {
				p.next()
			}
		}
		op := &StandardGateOp{Gate: gate, Frames: frames}
		// Optional {params = [...]} attribute.
		if p.peek().text == "{" {
			p.next()
			if err := p.expectIdent("params"); err != nil {
				return nil, err
			}
			if err := p.expectPunct("="); err != nil {
				return nil, err
			}
			if err := p.expectPunct("["); err != nil {
				return nil, err
			}
			for {
				if p.peek().text == "]" {
					p.next()
					break
				}
				v, err := p.parseFloat()
				if err != nil {
					return nil, err
				}
				op.Params = append(op.Params, v)
				if p.peek().text == "," {
					p.next()
				}
			}
			if err := p.expectPunct("}"); err != nil {
				return nil, err
			}
		}
		return op, nil
	default:
		return nil, p.errf("unknown op %q", t.text)
	}
}

func (p *parser) parseValueList(n int) ([]Value, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	out := make([]Value, 0, n)
	for i := 0; i < n; i++ {
		v, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		if i < n-1 {
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) parseValue() (Value, error) {
	t := p.next()
	switch t.kind {
	case tokValue:
		return Ref(t.text), nil
	case tokNumber:
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Value{}, p.errf("bad number %q", t.text)
		}
		return Lit(f), nil
	default:
		p.pos--
		return Value{}, p.errf("expected value or literal")
	}
}

func (p *parser) parseFloat() (float64, error) {
	t := p.next()
	if t.kind != tokNumber {
		p.pos--
		return 0, p.errf("expected number")
	}
	return strconv.ParseFloat(t.text, 64)
}

func (p *parser) parseInt() (int64, error) {
	t := p.next()
	if t.kind != tokNumber {
		p.pos--
		return 0, p.errf("expected integer")
	}
	return strconv.ParseInt(t.text, 10, 64)
}
