// Package mlir implements a self-contained MLIR-style pulse dialect — the
// intermediate representation layer of the stack (paper Section 5.2,
// Listing 2). The op set mirrors the IBM Quantum Engine pulse dialect the
// paper adopts: sequences over mixed frames with play, frame_change,
// shift/set phase and frequency, delay, barrier, capture, and gate-level
// "standard" ops that lowering passes replace with calibrated pulses.
//
// The dialect has a stable textual format with a full printer and parser so
// modules can cross process boundaries, mirroring how MQSS adapters hand
// MLIR jobs to the compiler.
package mlir

import "fmt"

// Type is the small type system of the pulse dialect.
type Type int

// Dialect types.
const (
	// TypeMixedFrame is !pulse.mixed_frame: a port/frame pair.
	TypeMixedFrame Type = iota
	// TypeF64 is a 64-bit float (frequencies, phases, angles).
	TypeF64
	// TypeI1 is a single classical bit (capture results).
	TypeI1
	// TypeWaveform is the internal type of waveform_ref results; it cannot
	// appear as a sequence argument or result type.
	TypeWaveform
)

// String renders the MLIR-style type syntax.
func (t Type) String() string {
	switch t {
	case TypeMixedFrame:
		return "!pulse.mixed_frame"
	case TypeF64:
		return "f64"
	case TypeI1:
		return "i1"
	case TypeWaveform:
		return "!pulse.waveform"
	default:
		return fmt.Sprintf("!pulse.unknown<%d>", int(t))
	}
}

// ParseType parses the textual type syntax.
func ParseType(s string) (Type, error) {
	switch s {
	case "!pulse.mixed_frame":
		return TypeMixedFrame, nil
	case "f64":
		return TypeF64, nil
	case "i1":
		return TypeI1, nil
	default:
		return 0, fmt.Errorf("mlir: unknown type %q", s)
	}
}

// Value is an SSA-ish operand: a reference to a named value (sequence
// argument or op result, written %name), an f64 literal, or — on the
// deferred-binding template path — an unbound affine parameter expression.
type Value struct {
	IsRef bool
	Ref   string  // without the leading %
	Lit   float64 // used when !IsRef and Expr == nil
	// Expr, when non-nil, marks the operand as an unbound parameter slot;
	// it is mutually exclusive with IsRef. Canonicalization never folds
	// expression operands, and the backend forwards them into QIR args.
	Expr *ParamExpr
}

// Ref makes a value reference.
func Ref(name string) Value { return Value{IsRef: true, Ref: name} }

// Lit makes an f64 literal.
func Lit(v float64) Value { return Value{Lit: v} }

// String renders the operand.
func (v Value) String() string {
	if v.IsRef {
		return "%" + v.Ref
	}
	if v.Expr != nil {
		return v.Expr.String()
	}
	return fmt.Sprintf("%g", v.Lit)
}

// Arg is a typed sequence argument.
type Arg struct {
	Name string
	Type Type
}
