package mlir

import (
	"strings"
	"testing"

	"mqsspulse/internal/waveform"
)

// listing2Module reconstructs the paper's Listing 2 kernel: three waveforms,
// gate-level X ops, plays, frame changes, an entangling pulse, and captures.
func listing2Module() *Module {
	amps := [][2]float64{{0.1, 0}, {0.4, 0}, {0.8, 0}, {0.4, 0}, {0.1, 0}}
	m := &Module{
		WaveformDefs: []*WaveformDef{
			{Name: "waveform_1", Spec: waveform.Spec{Name: "waveform_1", Samples: amps}},
			{Name: "waveform_2", Spec: waveform.Spec{Name: "waveform_2", Samples: amps}},
			{Name: "waveform_3", Spec: waveform.Spec{Name: "waveform_3", Kind: "gaussian_square",
				Params: map[string]float64{"amplitude": 0.5, "rise_frac": 0.2}, Length: 64}},
			{Name: "readout_pulse", Spec: waveform.Spec{Name: "readout_pulse", Kind: "constant",
				Params: map[string]float64{"amplitude": 0.2}, Length: 128}},
		},
	}
	seq := &Sequence{
		Name: "pulse_vqe_quantum_kernel",
		Args: []Arg{
			{Name: "drive0", Type: TypeMixedFrame},
			{Name: "drive1", Type: TypeMixedFrame},
			{Name: "coupler", Type: TypeMixedFrame},
			{Name: "readout0", Type: TypeMixedFrame},
			{Name: "readout1", Type: TypeMixedFrame},
			{Name: "freq", Type: TypeF64},
			{Name: "phase", Type: TypeF64},
		},
		ArgPorts: []string{"q0-drive-port", "q1-drive-port", "q0q1-coupler-port",
			"q0-readout-port", "q1-readout-port", "", ""},
		Results: []Type{TypeI1, TypeI1},
	}
	seq.Ops = []Op{
		&StandardGateOp{Gate: "x", Frames: []Value{Ref("drive0")}},
		&StandardGateOp{Gate: "x", Frames: []Value{Ref("drive1")}},
		&WaveformRefOp{Result: "wf1", Waveform: "waveform_1"},
		&WaveformRefOp{Result: "wf2", Waveform: "waveform_2"},
		&WaveformRefOp{Result: "wf3", Waveform: "waveform_3"},
		&PlayOp{Frame: Ref("drive0"), Waveform: Ref("wf1")},
		&PlayOp{Frame: Ref("drive1"), Waveform: Ref("wf2")},
		&FrameChangeOp{Frame: Ref("drive0"), Freq: Ref("freq"), Phase: Ref("phase")},
		&FrameChangeOp{Frame: Ref("drive1"), Freq: Ref("freq"), Phase: Ref("phase")},
		&PlayOp{Frame: Ref("coupler"), Waveform: Ref("wf3")},
		&BarrierOp{},
		&WaveformRefOp{Result: "wfr", Waveform: "readout_pulse"},
		&PlayOp{Frame: Ref("readout0"), Waveform: Ref("wfr")},
		&CaptureOp{Result: "m0", Frame: Ref("readout0"), Samples: 128},
		&PlayOp{Frame: Ref("readout1"), Waveform: Ref("wfr")},
		&CaptureOp{Result: "m1", Frame: Ref("readout1"), Samples: 128},
		&ReturnOp{Values: []Value{Ref("m0"), Ref("m1")}},
	}
	m.Sequences = append(m.Sequences, seq)
	return m
}

func TestListing2Verifies(t *testing.T) {
	m := listing2Module()
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	if m.OpCount() != 17 {
		t.Fatalf("op count = %d, want 17", m.OpCount())
	}
}

func TestPrintParseRoundtrip(t *testing.T) {
	m := listing2Module()
	text := m.Print()
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("%v\nsource:\n%s", err, text)
	}
	if err := back.Verify(); err != nil {
		t.Fatal(err)
	}
	// Structural equality via re-print.
	if back.Print() != text {
		t.Fatalf("roundtrip not stable:\n--- first\n%s\n--- second\n%s", text, back.Print())
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"module {",
		"module { pulse.def }",
		"module { banana }",
		"module { pulse.sequence @s( { } }",
		`module { pulse.sequence @s(%f: !pulse.nope) { pulse.return } }`,
		`module { pulse.sequence @s() { pulse.playy() pulse.return } }`,
	}
	for i, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d parsed successfully", i)
		}
	}
}

func TestParseScientificNotation(t *testing.T) {
	src := `module {
  pulse.sequence @s(%f0: !pulse.mixed_frame) {
    pulse.frame_change(%f0, freq = 5.1e+09, phase = -0.25)
    pulse.set_frequency(%f0, 4.8e9)
    pulse.return
  }
}`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	fc := m.Sequences[0].Ops[0].(*FrameChangeOp)
	if fc.Freq.Lit != 5.1e9 || fc.Phase.Lit != -0.25 {
		t.Fatalf("parsed freq=%g phase=%g", fc.Freq.Lit, fc.Phase.Lit)
	}
	sf := m.Sequences[0].Ops[1].(*SetFrequencyOp)
	if sf.Freq.Lit != 4.8e9 {
		t.Fatalf("parsed set_frequency %g", sf.Freq.Lit)
	}
}

func TestParseComments(t *testing.T) {
	src := `module {
  // a comment
  pulse.sequence @s(%f0: !pulse.mixed_frame) { // trailing
    pulse.delay(%f0, 16)
    pulse.return
  }
}`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Sequences[0].Ops) != 2 {
		t.Fatalf("ops = %d, want 2", len(m.Sequences[0].Ops))
	}
}

func TestParseGateParams(t *testing.T) {
	src := `module {
  pulse.sequence @s(%f0: !pulse.mixed_frame) {
    pulse.standard_rx(%f0) {params = [1.5707963]}
    pulse.return
  }
}`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g := m.Sequences[0].Ops[0].(*StandardGateOp)
	if g.Gate != "rx" || len(g.Params) != 1 {
		t.Fatalf("gate %q params %v", g.Gate, g.Params)
	}
}

func TestVerifyCatchesErrors(t *testing.T) {
	mk := func(mutate func(*Module)) error {
		m := listing2Module()
		mutate(m)
		return m.Verify()
	}
	cases := []struct {
		name   string
		mutate func(*Module)
	}{
		{"dup waveform", func(m *Module) {
			m.WaveformDefs = append(m.WaveformDefs, &WaveformDef{Name: "waveform_1",
				Spec: waveform.Spec{Name: "w", Samples: [][2]float64{{0.1, 0}}}})
		}},
		{"empty waveform name", func(m *Module) {
			m.WaveformDefs[0].Name = ""
		}},
		{"bad waveform spec", func(m *Module) {
			m.WaveformDefs[0].Spec = waveform.Spec{Name: "w"}
		}},
		{"dup sequence", func(m *Module) {
			m.Sequences = append(m.Sequences, m.Sequences[0])
		}},
		{"argports mismatch", func(m *Module) {
			m.Sequences[0].ArgPorts = m.Sequences[0].ArgPorts[:3]
		}},
		{"frame without port", func(m *Module) {
			m.Sequences[0].ArgPorts[0] = ""
		}},
		{"scalar with port", func(m *Module) {
			m.Sequences[0].ArgPorts[5] = "oops"
		}},
		{"undefined frame", func(m *Module) {
			m.Sequences[0].Ops[0] = &StandardGateOp{Gate: "x", Frames: []Value{Ref("ghost")}}
		}},
		{"play of non-waveform", func(m *Module) {
			m.Sequences[0].Ops[5] = &PlayOp{Frame: Ref("drive0"), Waveform: Ref("freq")}
		}},
		{"undefined waveform def", func(m *Module) {
			m.Sequences[0].Ops[2] = &WaveformRefOp{Result: "wf1", Waveform: "ghost"}
		}},
		{"f64 op on frame value", func(m *Module) {
			m.Sequences[0].Ops[7] = &FrameChangeOp{Frame: Ref("drive0"), Freq: Ref("drive1"), Phase: Lit(0)}
		}},
		{"negative delay", func(m *Module) {
			m.Sequences[0].Ops[10] = &DelayOp{Frame: Ref("drive0"), Samples: -5}
		}},
		{"capture redefines", func(m *Module) {
			m.Sequences[0].Ops[13] = &CaptureOp{Result: "wf1", Frame: Ref("readout0"), Samples: 8}
		}},
		{"zero capture window", func(m *Module) {
			m.Sequences[0].Ops[13] = &CaptureOp{Result: "m0", Frame: Ref("readout0"), Samples: 0}
		}},
		{"return arity", func(m *Module) {
			m.Sequences[0].Ops[16] = &ReturnOp{Values: []Value{Ref("m0")}}
		}},
		{"return wrong type", func(m *Module) {
			m.Sequences[0].Ops[16] = &ReturnOp{Values: []Value{Ref("m0"), Ref("freq")}}
		}},
		{"op after return", func(m *Module) {
			m.Sequences[0].Ops = append(m.Sequences[0].Ops, &BarrierOp{})
		}},
		{"missing return", func(m *Module) {
			m.Sequences[0].Ops = m.Sequences[0].Ops[:16]
		}},
		{"gate no frames", func(m *Module) {
			m.Sequences[0].Ops[0] = &StandardGateOp{Gate: "x"}
		}},
	}
	for _, tc := range cases {
		if err := mk(tc.mutate); err == nil {
			t.Errorf("%s: verify accepted invalid module", tc.name)
		}
	}
}

func TestTypeStrings(t *testing.T) {
	for _, ty := range []Type{TypeMixedFrame, TypeF64, TypeI1, TypeWaveform} {
		if ty.String() == "" {
			t.Errorf("type %d has empty string", int(ty))
		}
	}
	if _, err := ParseType("!pulse.waveform"); err == nil {
		t.Error("waveform type must not be parseable as an arg type")
	}
	for _, s := range []string{"!pulse.mixed_frame", "f64", "i1"} {
		ty, err := ParseType(s)
		if err != nil {
			t.Fatal(err)
		}
		if ty.String() != s {
			t.Errorf("type %q roundtrip gave %q", s, ty.String())
		}
	}
}

func TestValueString(t *testing.T) {
	if Ref("x").String() != "%x" {
		t.Error("ref rendering")
	}
	if Lit(2.5).String() != "2.5" {
		t.Error("literal rendering")
	}
}

func TestOpRenderAll(t *testing.T) {
	ops := []Op{
		&StandardGateOp{Gate: "rx", Frames: []Value{Ref("f")}, Params: []float64{0.5}},
		&WaveformRefOp{Result: "w", Waveform: "def"},
		&PlayOp{Frame: Ref("f"), Waveform: Ref("w")},
		&FrameChangeOp{Frame: Ref("f"), Freq: Lit(5e9), Phase: Lit(0.1)},
		&ShiftPhaseOp{Frame: Ref("f"), Phase: Lit(0.2)},
		&SetPhaseOp{Frame: Ref("f"), Phase: Lit(0.3)},
		&ShiftFrequencyOp{Frame: Ref("f"), Freq: Lit(1e6)},
		&SetFrequencyOp{Frame: Ref("f"), Freq: Lit(5e9)},
		&DelayOp{Frame: Ref("f"), Samples: 100},
		&BarrierOp{Frames: []Value{Ref("f")}},
		&CaptureOp{Result: "m", Frame: Ref("f"), Samples: 64},
		&ReturnOp{Values: []Value{Ref("m")}},
		&ReturnOp{},
	}
	for _, op := range ops {
		if op.Render() == "" || op.OpName() == "" {
			t.Errorf("%T renders empty", op)
		}
		if !strings.HasPrefix(op.OpName(), "pulse.") {
			t.Errorf("%T op name %q not in pulse dialect", op, op.OpName())
		}
	}
}

func TestFindHelpers(t *testing.T) {
	m := listing2Module()
	if _, ok := m.FindWaveform("waveform_2"); !ok {
		t.Error("FindWaveform failed")
	}
	if _, ok := m.FindWaveform("nope"); ok {
		t.Error("FindWaveform found ghost")
	}
	if _, ok := m.FindSequence("pulse_vqe_quantum_kernel"); !ok {
		t.Error("FindSequence failed")
	}
	if _, ok := m.FindSequence("nope"); ok {
		t.Error("FindSequence found ghost")
	}
}

func TestParsedListing2Semantics(t *testing.T) {
	// After roundtrip, the parsed module must preserve waveform payloads.
	m := listing2Module()
	back, err := Parse(m.Print())
	if err != nil {
		t.Fatal(err)
	}
	w1, _ := back.FindWaveform("waveform_1")
	mat, err := w1.Spec.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if mat.Len() != 5 {
		t.Fatalf("waveform_1 has %d samples, want 5", mat.Len())
	}
	w3, _ := back.FindWaveform("waveform_3")
	if w3.Spec.Kind != "gaussian_square" || w3.Spec.Length != 64 {
		t.Fatalf("parametric def lost: %+v", w3.Spec)
	}
	seq := back.Sequences[0]
	if len(seq.ArgPorts) != 7 || seq.ArgPorts[2] != "q0q1-coupler-port" {
		t.Fatalf("argPorts lost: %v", seq.ArgPorts)
	}
}
