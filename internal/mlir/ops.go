package mlir

import (
	"fmt"
	"strings"
)

// Op is one operation inside a pulse.sequence.
type Op interface {
	// OpName returns the dialect op mnemonic, e.g. "pulse.play".
	OpName() string
	// Render prints the op in the textual format.
	Render() string
	isOp()
}

// StandardGateOp is a gate-level operation expressed in the pulse dialect
// (e.g. pulse.standard_x in the paper's Listing 2). Lowering passes replace
// it with calibrated play/frame ops.
type StandardGateOp struct {
	Gate   string  // x, y, z, h, sx, rx, ry, rz, cz, cx, iswap
	Frames []Value // one mixed frame per operand qubit
	Params []float64
	// ParamExprs, when non-empty, parallels Params; a non-nil entry marks
	// that parameter as an unbound template slot (the literal in Params is
	// then a placeholder). Only rx/ry/rz lowerings accept symbolic angles.
	ParamExprs []*ParamExpr
}

// OpName implements Op.
func (o *StandardGateOp) OpName() string { return "pulse.standard_" + o.Gate }

// Render implements Op.
func (o *StandardGateOp) Render() string {
	frames := make([]string, len(o.Frames))
	for i, f := range o.Frames {
		frames[i] = f.String()
	}
	s := fmt.Sprintf("%s(%s)", o.OpName(), strings.Join(frames, ", "))
	if len(o.Params) > 0 {
		ps := make([]string, len(o.Params))
		for i, p := range o.Params {
			if i < len(o.ParamExprs) && o.ParamExprs[i] != nil {
				ps[i] = o.ParamExprs[i].String()
			} else {
				ps[i] = fmt.Sprintf("%g", p)
			}
		}
		s += fmt.Sprintf(" {params = [%s]}", strings.Join(ps, ", "))
	}
	return s
}

func (o *StandardGateOp) isOp() {}

// WaveformRefOp binds a module-level waveform definition to an SSA value
// (the paper's %wf1 = pulse.waveform.amplitudes @waveform_1).
type WaveformRefOp struct {
	Result   string // SSA name without %
	Waveform string // module symbol without @
}

// OpName implements Op.
func (o *WaveformRefOp) OpName() string { return "pulse.waveform_ref" }

// Render implements Op.
func (o *WaveformRefOp) Render() string {
	return fmt.Sprintf("%%%s = pulse.waveform_ref @%s", o.Result, o.Waveform)
}

func (o *WaveformRefOp) isOp() {}

// PlayOp emits a waveform on a mixed frame (pulse.play).
type PlayOp struct {
	Frame    Value
	Waveform Value // must reference a WaveformRefOp result
}

// OpName implements Op.
func (o *PlayOp) OpName() string { return "pulse.play" }

// Render implements Op.
func (o *PlayOp) Render() string {
	return fmt.Sprintf("pulse.play(%s, %s)", o.Frame, o.Waveform)
}

func (o *PlayOp) isOp() {}

// FrameChangeOp sets frequency and shifts phase in one op — the direct
// lowering of the paper's qFrameChange (pulse.frame_change).
type FrameChangeOp struct {
	Frame Value
	Freq  Value // f64 ref or literal, Hz
	Phase Value // f64 ref or literal, rad
}

// OpName implements Op.
func (o *FrameChangeOp) OpName() string { return "pulse.frame_change" }

// Render implements Op.
func (o *FrameChangeOp) Render() string {
	return fmt.Sprintf("pulse.frame_change(%s, freq = %s, phase = %s)", o.Frame, o.Freq, o.Phase)
}

func (o *FrameChangeOp) isOp() {}

// ShiftPhaseOp rotates the frame phase (pulse.shift_phase).
type ShiftPhaseOp struct {
	Frame Value
	Phase Value
}

// OpName implements Op.
func (o *ShiftPhaseOp) OpName() string { return "pulse.shift_phase" }

// Render implements Op.
func (o *ShiftPhaseOp) Render() string {
	return fmt.Sprintf("pulse.shift_phase(%s, %s)", o.Frame, o.Phase)
}

func (o *ShiftPhaseOp) isOp() {}

// SetPhaseOp overrides the frame phase (pulse.set_phase).
type SetPhaseOp struct {
	Frame Value
	Phase Value
}

// OpName implements Op.
func (o *SetPhaseOp) OpName() string { return "pulse.set_phase" }

// Render implements Op.
func (o *SetPhaseOp) Render() string {
	return fmt.Sprintf("pulse.set_phase(%s, %s)", o.Frame, o.Phase)
}

func (o *SetPhaseOp) isOp() {}

// ShiftFrequencyOp detunes the frame carrier (pulse.shift_frequency).
type ShiftFrequencyOp struct {
	Frame Value
	Freq  Value
}

// OpName implements Op.
func (o *ShiftFrequencyOp) OpName() string { return "pulse.shift_frequency" }

// Render implements Op.
func (o *ShiftFrequencyOp) Render() string {
	return fmt.Sprintf("pulse.shift_frequency(%s, %s)", o.Frame, o.Freq)
}

func (o *ShiftFrequencyOp) isOp() {}

// SetFrequencyOp overrides the frame carrier (pulse.set_frequency).
type SetFrequencyOp struct {
	Frame Value
	Freq  Value
}

// OpName implements Op.
func (o *SetFrequencyOp) OpName() string { return "pulse.set_frequency" }

// Render implements Op.
func (o *SetFrequencyOp) Render() string {
	return fmt.Sprintf("pulse.set_frequency(%s, %s)", o.Frame, o.Freq)
}

func (o *SetFrequencyOp) isOp() {}

// DelayOp idles a frame for a sample count (pulse.delay).
type DelayOp struct {
	Frame   Value
	Samples int64
	// SamplesExpr, when non-nil, makes the sample count an unbound template
	// slot (Samples is then a placeholder); the bound value rounds to the
	// nearest non-negative integer.
	SamplesExpr *ParamExpr
}

// OpName implements Op.
func (o *DelayOp) OpName() string { return "pulse.delay" }

// Render implements Op.
func (o *DelayOp) Render() string {
	if o.SamplesExpr != nil {
		return fmt.Sprintf("pulse.delay(%s, %s)", o.Frame, o.SamplesExpr)
	}
	return fmt.Sprintf("pulse.delay(%s, %d)", o.Frame, o.Samples)
}

func (o *DelayOp) isOp() {}

// BarrierOp synchronizes frames; empty means all (pulse.barrier).
type BarrierOp struct {
	Frames []Value
}

// OpName implements Op.
func (o *BarrierOp) OpName() string { return "pulse.barrier" }

// Render implements Op.
func (o *BarrierOp) Render() string {
	frames := make([]string, len(o.Frames))
	for i, f := range o.Frames {
		frames[i] = f.String()
	}
	return fmt.Sprintf("pulse.barrier(%s)", strings.Join(frames, ", "))
}

func (o *BarrierOp) isOp() {}

// CaptureOp acquires a readout result into an i1 SSA value (pulse.capture).
type CaptureOp struct {
	Result  string
	Frame   Value
	Samples int64 // acquisition window length
}

// OpName implements Op.
func (o *CaptureOp) OpName() string { return "pulse.capture" }

// Render implements Op.
func (o *CaptureOp) Render() string {
	return fmt.Sprintf("%%%s = pulse.capture(%s, %d)", o.Result, o.Frame, o.Samples)
}

func (o *CaptureOp) isOp() {}

// ReturnOp terminates a sequence, yielding the captured bits (pulse.return).
type ReturnOp struct {
	Values []Value
}

// OpName implements Op.
func (o *ReturnOp) OpName() string { return "pulse.return" }

// Render implements Op.
func (o *ReturnOp) Render() string {
	if len(o.Values) == 0 {
		return "pulse.return"
	}
	vs := make([]string, len(o.Values))
	for i, v := range o.Values {
		vs[i] = v.String()
	}
	return "pulse.return " + strings.Join(vs, ", ")
}

func (o *ReturnOp) isOp() {}
