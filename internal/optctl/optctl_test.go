package optctl

import (
	"math"
	"math/rand"
	"testing"

	"mqsspulse/internal/linalg"
)

func twoLevelSystem(slots int) *ControlSystem {
	// Resonant qubit: controls are π·Rabi·X and π·Rabi·Y with Rabi=10 MHz,
	// dt = 1 ns per slot.
	rabi := 10e6
	return &ControlSystem{
		Drift: linalg.NewMatrix(2, 2),
		Controls: []*linalg.Matrix{
			linalg.PauliX().Scale(complex(math.Pi*rabi, 0)),
			linalg.PauliY().Scale(complex(math.Pi*rabi, 0)),
		},
		Dt:     1e-9,
		Slots:  slots,
		MaxAmp: 1.0,
	}
}

func TestControlSystemValidate(t *testing.T) {
	good := twoLevelSystem(10)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := twoLevelSystem(10)
	bad.Controls = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("no controls accepted")
	}
	bad2 := twoLevelSystem(10)
	bad2.Dt = 0
	if err := bad2.Validate(); err == nil {
		t.Fatal("zero dt accepted")
	}
	bad3 := twoLevelSystem(10)
	nh := linalg.NewMatrix(2, 2)
	nh.Set(0, 1, 1)
	bad3.Controls = []*linalg.Matrix{nh}
	if err := bad3.Validate(); err == nil {
		t.Fatal("non-Hermitian control accepted")
	}
	bad4 := twoLevelSystem(10)
	bad4.Drift = linalg.NewMatrix(3, 3)
	if err := bad4.Validate(); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestPropagateConstantPulseIsRabi(t *testing.T) {
	// Constant full amplitude on X for 50 ns at 10 MHz = π rotation.
	cs := twoLevelSystem(50)
	p := NewPulse(cs)
	for k := range p.Amps {
		p.Amps[k][0] = 1.0
	}
	u, err := cs.Propagate(p)
	if err != nil {
		t.Fatal(err)
	}
	if f := GateFidelity(linalg.PauliX(), u, nil); math.Abs(f-1) > 1e-9 {
		t.Fatalf("constant π pulse fidelity %g", f)
	}
}

func TestPulseFlattenRoundtrip(t *testing.T) {
	cs := twoLevelSystem(4)
	p := NewPulse(cs)
	p.Amps[1][0] = 0.5
	p.Amps[3][1] = -0.25
	x := p.Flatten()
	q := NewPulse(cs)
	q.SetFlat(x)
	for k := range p.Amps {
		for j := range p.Amps[k] {
			if p.Amps[k][j] != q.Amps[k][j] {
				t.Fatal("flatten/setflat roundtrip broken")
			}
		}
	}
}

func TestGrapeSynthesizesHadamard(t *testing.T) {
	// 100 ns at 10 MHz Rabi: enough rotation budget (2π rad) for the
	// ~3π/2 of X/Y rotation a Hadamard needs.
	cs := twoLevelSystem(100)
	init := NewPulse(cs)
	for k := range init.Amps {
		init.Amps[k][0] = 0.3
		init.Amps[k][1] = 0.05 // break the X-rotation symmetry
	}
	res, err := GrapeUnitary(cs, linalg.Hadamard(), nil, init, GrapeOptions{Iters: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fidelity < 0.999 {
		t.Fatalf("GRAPE H fidelity %g after %d iters", res.Fidelity, res.Iterations)
	}
	// Trace must be non-decreasing (accepted steps only).
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i] < res.Trace[i-1]-1e-12 {
			t.Fatal("fidelity trace decreased")
		}
	}
}

func TestGrapeRespectsAmplitudeBound(t *testing.T) {
	cs := twoLevelSystem(30)
	cs.MaxAmp = 0.4
	init := NewPulse(cs)
	for k := range init.Amps {
		init.Amps[k][0] = 0.2
	}
	res, err := GrapeUnitary(cs, linalg.PauliX(), nil, init, GrapeOptions{Iters: 200})
	if err != nil {
		t.Fatal(err)
	}
	for k := range res.Pulse.Amps {
		for j := range res.Pulse.Amps[k] {
			if math.Abs(res.Pulse.Amps[k][j]) > 0.4+1e-12 {
				t.Fatalf("amplitude bound violated: %g", res.Pulse.Amps[k][j])
			}
		}
	}
}

func TestGrapeTransmonXSuppressesLeakage(t *testing.T) {
	prob := &TransmonXProblem{
		Slots: 40, Dt: 1e-9, AnharmHz: -220e6, RabiHz: 40e6,
	}
	target, proj := TargetX()
	res, err := GrapeUnitary(prob.ModelSystem(), target, proj, prob.GaussianSeed(),
		GrapeOptions{Iters: 300, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fidelity < 0.999 {
		t.Fatalf("transmon X fidelity %g", res.Fidelity)
	}
	// Leakage check: the optimized propagator keeps |2⟩ population small
	// for computational inputs.
	u, err := prob.ModelSystem().Propagate(res.Pulse)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range [][]complex128{{1, 0, 0}, {0, 1, 0}} {
		out := u.MulVec(in)
		leak := real(out[2])*real(out[2]) + imag(out[2])*imag(out[2])
		if leak > 5e-3 {
			t.Fatalf("leakage %g too high", leak)
		}
	}
}

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-1)*(x[0]-1) + 10*(x[1]+2)*(x[1]+2)
	}
	x, fv, evals := NelderMead(f, []float64{0, 0}, NelderMeadOptions{})
	if math.Abs(x[0]-1) > 1e-4 || math.Abs(x[1]+2) > 1e-4 {
		t.Fatalf("NM solution %v after %d evals", x, evals)
	}
	if fv > 1e-7 {
		t.Fatalf("NM value %g", fv)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	x, _, _ := NelderMead(f, []float64{-1.2, 1}, NelderMeadOptions{MaxEvals: 4000, InitStep: 0.5})
	if math.Abs(x[0]-1) > 0.05 || math.Abs(x[1]-1) > 0.05 {
		t.Fatalf("Rosenbrock solution %v", x)
	}
}

func TestSPSANoisyQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(x []float64) float64 {
		v := 0.0
		for _, xi := range x {
			v += (xi - 0.3) * (xi - 0.3)
		}
		return v + 0.01*rng.NormFloat64()
	}
	x, _, evals := SPSA(f, make([]float64, 6), SPSAOptions{Iters: 500, A0: 0.1, C0: 0.05, Seed: 2})
	for i, xi := range x {
		if math.Abs(xi-0.3) > 0.1 {
			t.Fatalf("SPSA x[%d]=%g after %d evals", i, xi, evals)
		}
	}
}

func TestSPSAClip(t *testing.T) {
	f := func(x []float64) float64 { return -x[0] } // pushes x up forever
	x, _, _ := SPSA(f, []float64{0}, SPSAOptions{Iters: 100, A0: 1, C0: 0.1, Seed: 3, Clip: 0.5})
	if x[0] > 0.5+1e-12 {
		t.Fatalf("clip violated: %g", x[0])
	}
}

func TestMismatchStudyShapes(t *testing.T) {
	// The paper's claim: open-loop degrades under model mismatch; hybrid
	// (GRAPE + closed-loop) recovers.
	prob := &TransmonXProblem{
		Slots: 32, Dt: 1e-9, AnharmHz: -220e6, RabiHz: 40e6,
		TrueDetuneHz: 3e6, TrueAmpScale: 1.05,
	}
	res, err := RunMismatchStudy(prob, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.OpenLoopModelF < 0.999 {
		t.Fatalf("GRAPE failed on its own model: %g", res.OpenLoopModelF)
	}
	if res.OpenLoopTrueF >= res.OpenLoopModelF-1e-4 {
		t.Fatalf("mismatch did not degrade open loop: model %g true %g",
			res.OpenLoopModelF, res.OpenLoopTrueF)
	}
	if res.HybridF <= res.OpenLoopTrueF {
		t.Fatalf("hybrid (%g) did not beat open loop on hardware (%g)",
			res.HybridF, res.OpenLoopTrueF)
	}
	if res.HybridF < 0.99 {
		t.Fatalf("hybrid fidelity %g too low", res.HybridF)
	}
}

func TestMeasuredFidelityShotNoise(t *testing.T) {
	prob := &TransmonXProblem{Slots: 24, Dt: 1e-9, AnharmHz: -220e6, RabiHz: 40e6}
	pl := prob.GaussianSeed()
	exact, err := prob.MeasuredFidelity(pl, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	noisy, err := prob.MeasuredFidelity(pl, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(noisy-exact) > 0.08 {
		t.Fatalf("shot-noise estimate %g too far from exact %g", noisy, exact)
	}
	if noisy == exact {
		t.Fatal("shot sampling produced the exact value; noise path untested")
	}
}
