// Package optctl implements pulse engineering by optimal control — the
// paper's second pulse-level use case (Section 2.1): open-loop GRAPE
// gradient pulse design against a model Hamiltonian, closed-loop
// optimization (SPSA, Nelder-Mead) against measured fidelities, and the
// hybrid open-then-closed strategy the paper notes is "increasingly adopted
// for achieving near-optimal control on NISQ devices".
package optctl

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"mqsspulse/internal/linalg"
)

// ControlSystem defines a piecewise-constant bilinear control problem:
// H(t) = Drift + Σ_j u_j(t)·Controls[j], with u in physical units (rad/s
// folded into the control operators; amplitudes are dimensionless).
type ControlSystem struct {
	Drift    *linalg.Matrix
	Controls []*linalg.Matrix
	// Dt is the slot duration in seconds.
	Dt float64
	// Slots is the number of piecewise-constant time slots.
	Slots int
	// MaxAmp bounds |u| per control (0 = unbounded).
	MaxAmp float64
}

// Validate checks dimensions and Hermiticity.
func (cs *ControlSystem) Validate() error {
	if cs.Drift == nil || !cs.Drift.IsSquare() {
		return errors.New("optctl: drift must be square")
	}
	if len(cs.Controls) == 0 {
		return errors.New("optctl: no control operators")
	}
	if cs.Dt <= 0 || cs.Slots <= 0 {
		return errors.New("optctl: non-positive dt or slots")
	}
	tol := 1e-9 * (1 + cs.Drift.MaxAbs())
	if !cs.Drift.IsHermitian(tol) {
		return errors.New("optctl: drift not Hermitian")
	}
	for j, c := range cs.Controls {
		if c.Rows != cs.Drift.Rows || c.Cols != cs.Drift.Cols {
			return fmt.Errorf("optctl: control %d dimension mismatch", j)
		}
		if !c.IsHermitian(1e-9 * (1 + c.MaxAbs())) {
			return fmt.Errorf("optctl: control %d not Hermitian", j)
		}
	}
	return nil
}

// Pulse is a control amplitude table: Amps[k][j] is control j in slot k.
type Pulse struct {
	Amps [][]float64
}

// NewPulse allocates a zero pulse for the system.
func NewPulse(cs *ControlSystem) *Pulse {
	amps := make([][]float64, cs.Slots)
	for k := range amps {
		amps[k] = make([]float64, len(cs.Controls))
	}
	return &Pulse{Amps: amps}
}

// Clone deep-copies the pulse.
func (p *Pulse) Clone() *Pulse {
	c := &Pulse{Amps: make([][]float64, len(p.Amps))}
	for k, row := range p.Amps {
		c.Amps[k] = append([]float64(nil), row...)
	}
	return c
}

// Flatten serializes amplitudes row-major (for generic optimizers).
func (p *Pulse) Flatten() []float64 {
	var out []float64
	for _, row := range p.Amps {
		out = append(out, row...)
	}
	return out
}

// SetFlat writes a flat parameter vector back into the pulse.
func (p *Pulse) SetFlat(x []float64) {
	i := 0
	for k := range p.Amps {
		for j := range p.Amps[k] {
			p.Amps[k][j] = x[i]
			i++
		}
	}
}

// clip enforces the amplitude bound in place.
func (p *Pulse) clip(maxAmp float64) {
	if maxAmp <= 0 {
		return
	}
	for k := range p.Amps {
		for j, u := range p.Amps[k] {
			if u > maxAmp {
				p.Amps[k][j] = maxAmp
			} else if u < -maxAmp {
				p.Amps[k][j] = -maxAmp
			}
		}
	}
}

// Propagate computes the total propagator of a pulse on the system.
func (cs *ControlSystem) Propagate(p *Pulse) (*linalg.Matrix, error) {
	u := linalg.Identity(cs.Drift.Rows)
	for k := 0; k < cs.Slots; k++ {
		h := cs.Drift.Clone()
		for j, c := range cs.Controls {
			if p.Amps[k][j] != 0 {
				h.AddInPlace(c, complex(p.Amps[k][j], 0))
			}
		}
		uk, err := linalg.ExpI(h, cs.Dt)
		if err != nil {
			return nil, err
		}
		u = uk.Mul(u)
	}
	return u, nil
}

// GateFidelity is the standard |tr(U_target† U)|²/d² measure over the full
// space, or over a projected computational subspace when proj is non-nil
// (for leakage-aware targets: proj selects the qubit subspace columns).
func GateFidelity(target, u *linalg.Matrix, proj *linalg.Matrix) float64 {
	eff := u
	if proj != nil {
		eff = proj.Dagger().Mul(u).Mul(proj)
	}
	d := complex(float64(target.Rows), 0)
	tr := target.Dagger().Mul(eff).Trace() / d
	return real(tr)*real(tr) + imag(tr)*imag(tr)
}

// StateFidelityPure returns |⟨target|U|start⟩|².
func StateFidelityPure(start, target []complex128, u *linalg.Matrix) float64 {
	v := u.MulVec(start)
	ov := linalg.Dot(target, v)
	return real(ov)*real(ov) + imag(ov)*imag(ov)
}

// GrapeOptions tunes the gradient ascent.
type GrapeOptions struct {
	// Iters is the maximum number of gradient steps (default 200).
	Iters int
	// LearningRate is the initial gradient-ascent step size (default 0.2);
	// backtracking halves it on non-improving steps and grows it on
	// accepted ones.
	LearningRate float64
	// Tol stops when 1-F drops below it (default 1e-6).
	Tol float64
}

// GrapeResult reports the optimization trajectory.
type GrapeResult struct {
	Pulse      *Pulse
	Fidelity   float64
	Iterations int
	// Trace holds the fidelity after each accepted iteration.
	Trace []float64
}

// GrapeUnitary runs gradient-ascent pulse engineering toward a target
// unitary (optionally projected onto a computational subspace). Gradients
// use the first-order GRAPE approximation dU_k/du ≈ -i·Δt·H_j·U_k, exact in
// the limit of small slot durations.
func GrapeUnitary(cs *ControlSystem, target *linalg.Matrix, proj *linalg.Matrix, init *Pulse, opts GrapeOptions) (*GrapeResult, error) {
	if err := cs.Validate(); err != nil {
		return nil, err
	}
	if opts.Iters <= 0 {
		opts.Iters = 200
	}
	if opts.LearningRate <= 0 {
		opts.LearningRate = 0.2
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-6
	}
	p := init.Clone()
	p.clip(cs.MaxAmp)
	n := cs.Drift.Rows

	fidelity := func(pl *Pulse) (float64, []*linalg.Matrix, error) {
		// Forward pass keeping slot propagators.
		us := make([]*linalg.Matrix, cs.Slots)
		for k := 0; k < cs.Slots; k++ {
			h := cs.Drift.Clone()
			for j, c := range cs.Controls {
				if pl.Amps[k][j] != 0 {
					h.AddInPlace(c, complex(pl.Amps[k][j], 0))
				}
			}
			uk, err := linalg.ExpI(h, cs.Dt)
			if err != nil {
				return 0, nil, err
			}
			us[k] = uk
		}
		total := linalg.Identity(n)
		for k := 0; k < cs.Slots; k++ {
			total = us[k].Mul(total)
		}
		return GateFidelity(target, total, proj), us, nil
	}

	f, us, err := fidelity(p)
	if err != nil {
		return nil, err
	}
	res := &GrapeResult{Pulse: p, Fidelity: f, Trace: []float64{f}}
	lr := opts.LearningRate

	for it := 0; it < opts.Iters && 1-res.Fidelity > opts.Tol; it++ {
		// Backward accumulators: forward products F_k = U_k...U_1 and
		// backward products B_k = U_N...U_{k+1}.
		fwd := make([]*linalg.Matrix, cs.Slots+1)
		fwd[0] = linalg.Identity(n)
		for k := 0; k < cs.Slots; k++ {
			fwd[k+1] = us[k].Mul(fwd[k])
		}
		bwd := make([]*linalg.Matrix, cs.Slots+1)
		bwd[cs.Slots] = linalg.Identity(n)
		for k := cs.Slots - 1; k >= 0; k-- {
			bwd[k] = bwd[k+1].Mul(us[k])
		}
		total := fwd[cs.Slots]

		// Overlap scalar: F = |g|²/d², g = tr(P† T† P U)/... handled by
		// effective target conjugation below.
		eff := total
		tgt := target
		if proj != nil {
			eff = proj.Dagger().Mul(total).Mul(proj)
		}
		d := complex(float64(tgt.Rows), 0)
		g := tgt.Dagger().Mul(eff).Trace() / d

		grad := make([][]float64, cs.Slots)
		for k := range grad {
			grad[k] = make([]float64, len(cs.Controls))
		}
		for k := 0; k < cs.Slots; k++ {
			// dU/du_kj ≈ B_{k} · (-iΔt H_j U_k) · F_{k} ... assembled as
			// bwd[k+1] · (-iΔt H_j) · fwd[k+1].
			for j, c := range cs.Controls {
				m := bwd[k+1].Mul(c).Mul(fwd[k+1])
				var dg complex128
				if proj != nil {
					pm := proj.Dagger().Mul(m).Mul(proj)
					dg = tgt.Dagger().Mul(pm).Trace() / d
				} else {
					dg = tgt.Dagger().Mul(m).Trace() / d
				}
				dg *= complex(0, -cs.Dt)
				// dF/du = 2·Re(conj(g)·dg)
				grad[k][j] = 2 * real(cmplx.Conj(g)*dg)
			}
		}
		var norm float64
		for k := range grad {
			for _, v := range grad[k] {
				norm += v * v
			}
		}
		if math.Sqrt(norm) < 1e-15 {
			break
		}
		// Backtracking line search: step ∝ gradient, adaptive rate.
		improved := false
		for attempt := 0; attempt < 12; attempt++ {
			cand := p.Clone()
			for k := range cand.Amps {
				for j := range cand.Amps[k] {
					cand.Amps[k][j] += lr * grad[k][j]
				}
			}
			cand.clip(cs.MaxAmp)
			cf, cus, err := fidelity(cand)
			if err != nil {
				return nil, err
			}
			if cf > res.Fidelity {
				p, us = cand, cus
				res.Pulse, res.Fidelity = p, cf
				res.Trace = append(res.Trace, cf)
				improved = true
				lr *= 1.3
				break
			}
			lr /= 2
		}
		res.Iterations = it + 1
		if !improved {
			break
		}
	}
	return res, nil
}
