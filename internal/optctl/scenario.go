package optctl

import (
	"math"
	"math/rand"

	"mqsspulse/internal/linalg"
)

// TransmonXProblem is the canonical optimal-control scenario of the paper's
// Section 2.1: synthesize a leakage-free X gate on a 3-level transmon.
// The model Hamiltonian (what open-loop GRAPE sees) and the true Hamiltonian
// (what the hardware implements) can differ in detuning and drive scale —
// the model mismatch that degrades open-loop control.
type TransmonXProblem struct {
	// Slots and Dt define the pulse grid.
	Slots int
	Dt    float64
	// AnharmHz is the transmon anharmonicity.
	AnharmHz float64
	// RabiHz is the nominal full-scale Rabi rate.
	RabiHz float64
	// TrueDetuneHz and TrueAmpScale define the model mismatch: the real
	// qubit sits TrueDetuneHz away from the model frame and responds with
	// TrueAmpScale times the modeled drive strength.
	TrueDetuneHz float64
	TrueAmpScale float64
}

// system builds the control system for given detuning/amp scale.
func (p *TransmonXProblem) system(detuneHz, ampScale float64) *ControlSystem {
	dims := []int{3}
	drift := linalg.NewMatrix(3, 3)
	for n := 0; n < 3; n++ {
		e := 2 * math.Pi * (detuneHz*float64(n) + p.AnharmHz/2*float64(n)*float64(n-1))
		drift.Set(n, n, complex(e, 0))
	}
	a := linalg.Annihilation(3)
	ad := linalg.Creation(3)
	// Two quadrature controls: (a + a†) and i(a − a†), scaled so that
	// amplitude 1.0 corresponds to the full-scale Rabi rate.
	w := complex(math.Pi*p.RabiHz*ampScale, 0)
	hx := a.Add(ad).Scale(w)
	hy := a.Sub(ad).Scale(w * complex(0, 1))
	_ = dims
	return &ControlSystem{
		Drift:    drift,
		Controls: []*linalg.Matrix{hx, hy},
		Dt:       p.Dt,
		Slots:    p.Slots,
		MaxAmp:   1.0,
	}
}

// ModelSystem is the believed (mismatch-free) system GRAPE optimizes on.
func (p *TransmonXProblem) ModelSystem() *ControlSystem { return p.system(0, 1) }

// TrueSystem is the real hardware with mismatch applied.
func (p *TransmonXProblem) TrueSystem() *ControlSystem {
	scale := p.TrueAmpScale
	if scale == 0 {
		scale = 1
	}
	return p.system(p.TrueDetuneHz, scale)
}

// TargetX returns the qubit-subspace X gate and the projector onto the
// computational subspace of the 3-level transmon.
func TargetX() (target, proj *linalg.Matrix) {
	target = linalg.PauliX()
	proj = linalg.NewMatrix(3, 2)
	proj.Set(0, 0, 1)
	proj.Set(1, 1, 1)
	return target, proj
}

// GaussianSeed initializes the in-phase control with a Gaussian π-pulse
// guess (area-calibrated for the nominal Rabi rate).
func (p *TransmonXProblem) GaussianSeed() *Pulse {
	cs := p.ModelSystem()
	pl := NewPulse(cs)
	sigma := 0.2 * float64(p.Slots)
	mu := float64(p.Slots-1) / 2
	// Area for a π rotation: Σ u_k · 2π·Rabi·dt = π  (factor 2 from x+x†).
	var sum float64
	raw := make([]float64, p.Slots)
	for k := 0; k < p.Slots; k++ {
		raw[k] = math.Exp(-(float64(k) - mu) * (float64(k) - mu) / (2 * sigma * sigma))
		sum += raw[k]
	}
	scale := 1 / (2 * p.RabiHz * p.Dt * sum)
	for k := 0; k < p.Slots; k++ {
		pl.Amps[k][0] = math.Min(1, raw[k]*scale)
	}
	return pl
}

// MeasuredFidelity evaluates a pulse on the true system with binomial shot
// noise: the closed-loop objective. shots <= 0 returns the exact value.
func (p *TransmonXProblem) MeasuredFidelity(pl *Pulse, shots int, rng *rand.Rand) (float64, error) {
	u, err := p.TrueSystem().Propagate(pl)
	if err != nil {
		return 0, err
	}
	target, proj := TargetX()
	f := GateFidelity(target, u, proj)
	if shots <= 0 {
		return f, nil
	}
	// Binomial estimate of a survival-probability-style fidelity proxy.
	hits := 0
	for i := 0; i < shots; i++ {
		if rng.Float64() < f {
			hits++
		}
	}
	return float64(hits) / float64(shots), nil
}

// MismatchStudyResult compares the three strategies of the paper's
// Section 2.1 under model mismatch.
type MismatchStudyResult struct {
	OpenLoopModelF float64 // GRAPE fidelity on its own (wrong) model
	OpenLoopTrueF  float64 // the same pulse evaluated on the true system
	ClosedLoopF    float64 // SPSA from the naive seed on the true system
	HybridF        float64 // SPSA refinement of the GRAPE pulse
	GrapeIters     int
	ClosedEvals    int
	HybridEvals    int
}

// RunMismatchStudy executes the full open/closed/hybrid comparison.
func RunMismatchStudy(p *TransmonXProblem, shots int, seed int64) (*MismatchStudyResult, error) {
	rng := rand.New(rand.NewSource(seed))
	target, proj := TargetX()
	res := &MismatchStudyResult{}

	// Open loop: GRAPE on the (mismatched) model.
	gr, err := GrapeUnitary(p.ModelSystem(), target, proj, p.GaussianSeed(),
		GrapeOptions{Iters: 150, Tol: 1e-7})
	if err != nil {
		return nil, err
	}
	res.OpenLoopModelF = gr.Fidelity
	res.GrapeIters = gr.Iterations
	trueF, err := p.MeasuredFidelity(gr.Pulse, 0, nil)
	if err != nil {
		return nil, err
	}
	res.OpenLoopTrueF = trueF

	objective := func(x []float64) float64 {
		pl := NewPulse(p.ModelSystem())
		pl.SetFlat(x)
		pl.clip(1.0)
		f, err := p.MeasuredFidelity(pl, shots, rng)
		if err != nil {
			return 1
		}
		return 1 - f
	}

	// Closed loop from the naive Gaussian seed.
	seedPulse := p.GaussianSeed()
	xc, _, evalsC := SPSA(objective, seedPulse.Flatten(),
		SPSAOptions{Iters: 300, A0: 0.08, C0: 0.05, Seed: seed, Clip: 1.0})
	closed := NewPulse(p.ModelSystem())
	closed.SetFlat(xc)
	closed.clip(1.0)
	fClosed, err := p.MeasuredFidelity(closed, 0, nil)
	if err != nil {
		return nil, err
	}
	res.ClosedLoopF = fClosed
	res.ClosedEvals = evalsC

	// Hybrid: closed-loop refinement starting from the GRAPE solution.
	xh, _, evalsH := SPSA(objective, gr.Pulse.Flatten(),
		SPSAOptions{Iters: 300, A0: 0.04, C0: 0.03, Seed: seed + 1, Clip: 1.0})
	hybrid := NewPulse(p.ModelSystem())
	hybrid.SetFlat(xh)
	hybrid.clip(1.0)
	fHybrid, err := p.MeasuredFidelity(hybrid, 0, nil)
	if err != nil {
		return nil, err
	}
	res.HybridF = fHybrid
	res.HybridEvals = evalsH
	return res, nil
}
