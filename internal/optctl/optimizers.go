package optctl

import (
	"math"
	"math/rand"
	"sort"
)

// Objective is a (possibly noisy) scalar function to MINIMIZE; closed-loop
// calibration wraps measured infidelities in one of these.
type Objective func(x []float64) float64

// NelderMeadOptions tunes the simplex optimizer.
type NelderMeadOptions struct {
	// MaxEvals bounds objective evaluations (default 400·dim).
	MaxEvals int
	// InitStep is the initial simplex edge length (default 0.1).
	InitStep float64
	// Tol stops when the simplex f-spread falls below it (default 1e-9).
	Tol float64
}

// NelderMead minimizes f starting from x0 using the standard
// reflection/expansion/contraction/shrink simplex method. It returns the
// best point, its value, and the evaluation count.
func NelderMead(f Objective, x0 []float64, opts NelderMeadOptions) ([]float64, float64, int) {
	n := len(x0)
	if opts.MaxEvals <= 0 {
		opts.MaxEvals = 400 * (n + 1)
	}
	if opts.InitStep <= 0 {
		opts.InitStep = 0.1
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-9
	}
	const alpha, gamma, rho, sigma = 1.0, 2.0, 0.5, 0.5

	type vertex struct {
		x []float64
		f float64
	}
	evals := 0
	eval := func(x []float64) float64 {
		evals++
		return f(x)
	}
	simplex := make([]vertex, n+1)
	simplex[0] = vertex{append([]float64(nil), x0...), eval(x0)}
	for i := 1; i <= n; i++ {
		x := append([]float64(nil), x0...)
		x[i-1] += opts.InitStep
		simplex[i] = vertex{x, eval(x)}
	}
	for evals < opts.MaxEvals {
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
		if simplex[n].f-simplex[0].f < opts.Tol {
			break
		}
		// Centroid of all but worst.
		centroid := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				centroid[j] += simplex[i].x[j] / float64(n)
			}
		}
		worst := simplex[n]
		reflect := make([]float64, n)
		for j := 0; j < n; j++ {
			reflect[j] = centroid[j] + alpha*(centroid[j]-worst.x[j])
		}
		fr := eval(reflect)
		switch {
		case fr < simplex[0].f:
			// Try expansion.
			expand := make([]float64, n)
			for j := 0; j < n; j++ {
				expand[j] = centroid[j] + gamma*(reflect[j]-centroid[j])
			}
			fe := eval(expand)
			if fe < fr {
				simplex[n] = vertex{expand, fe}
			} else {
				simplex[n] = vertex{reflect, fr}
			}
		case fr < simplex[n-1].f:
			simplex[n] = vertex{reflect, fr}
		default:
			// Contraction.
			contract := make([]float64, n)
			for j := 0; j < n; j++ {
				contract[j] = centroid[j] + rho*(worst.x[j]-centroid[j])
			}
			fc := eval(contract)
			if fc < worst.f {
				simplex[n] = vertex{contract, fc}
			} else {
				// Shrink toward best.
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						simplex[i].x[j] = simplex[0].x[j] + sigma*(simplex[i].x[j]-simplex[0].x[j])
					}
					simplex[i].f = eval(simplex[i].x)
				}
			}
		}
	}
	sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
	return simplex[0].x, simplex[0].f, evals
}

// SPSAOptions tunes simultaneous-perturbation stochastic approximation, the
// standard optimizer for shot-noise-limited closed-loop quantum
// calibration.
type SPSAOptions struct {
	// Iters is the iteration count (default 200).
	Iters int
	// A0 is the initial step size (default 0.05).
	A0 float64
	// C0 is the initial perturbation size (default 0.05).
	C0 float64
	// Seed fixes the perturbation stream.
	Seed int64
	// Clip bounds parameters to [-Clip, Clip] when > 0.
	Clip float64
}

// SPSA minimizes a noisy objective with two evaluations per iteration. It
// returns the best-seen point and value.
func SPSA(f Objective, x0 []float64, opts SPSAOptions) ([]float64, float64, int) {
	if opts.Iters <= 0 {
		opts.Iters = 200
	}
	if opts.A0 <= 0 {
		opts.A0 = 0.05
	}
	if opts.C0 <= 0 {
		opts.C0 = 0.05
	}
	rng := rand.New(rand.NewSource(opts.Seed + 1))
	n := len(x0)
	x := append([]float64(nil), x0...)
	bestX := append([]float64(nil), x...)
	bestF := f(x)
	evals := 1
	const alpha, gamma = 0.602, 0.101
	for k := 0; k < opts.Iters; k++ {
		ak := opts.A0 / math.Pow(float64(k+1)+10, alpha)
		ck := opts.C0 / math.Pow(float64(k+1), gamma)
		delta := make([]float64, n)
		for i := range delta {
			if rng.Intn(2) == 0 {
				delta[i] = 1
			} else {
				delta[i] = -1
			}
		}
		xp := make([]float64, n)
		xm := make([]float64, n)
		for i := range x {
			xp[i] = x[i] + ck*delta[i]
			xm[i] = x[i] - ck*delta[i]
		}
		fp, fm := f(xp), f(xm)
		evals += 2
		for i := range x {
			g := (fp - fm) / (2 * ck * delta[i])
			x[i] -= ak * g
			if opts.Clip > 0 {
				if x[i] > opts.Clip {
					x[i] = opts.Clip
				} else if x[i] < -opts.Clip {
					x[i] = -opts.Clip
				}
			}
		}
		if fx := f(x); fx < bestF {
			bestF = fx
			copy(bestX, x)
		}
		evals++
	}
	return bestX, bestF, evals
}
