// Package mqsspulse is a Go implementation of the pulse-enabled
// heterogeneous HPCQC software stack described in "Tackling the Challenges
// of Adding Pulse-level Support to a Heterogeneous HPCQC Software Stack:
// MQSS Pulse" (SC Workshops '25).
//
// The stack spans all four layers the paper extends:
//
//   - Programming interface: a compiled QPI with the paper's three pulse
//     primitives (Waveform, PlayWaveform, FrameChange) next to gates.
//   - Intermediate representation: an MLIR-style pulse dialect with a pass
//     pipeline (gate→pulse lowering, canonicalization, DCE, hardware
//     legalization).
//   - Backend interface: QDMI — property queries over devices, sites,
//     operations and ports, pulse-calibration management, job submission.
//   - Exchange format: QIR with a Pulse Profile, linked against device
//     runtimes at submission time.
//
// Three simulated quantum devices (superconducting transmons, trapped
// ions, neutral atoms) execute payloads through a Lindblad-level dynamics
// engine, with parameter drift for the paper's calibration use case.
//
// This facade re-exports the stable public surface; examples/ and cmd/
// build exclusively against it.
package mqsspulse

import (
	"context"
	"time"

	"mqsspulse/internal/calib"
	"mqsspulse/internal/client"
	"mqsspulse/internal/compiler"
	"mqsspulse/internal/devices"
	"mqsspulse/internal/mlir"
	"mqsspulse/internal/optctl"
	"mqsspulse/internal/ptemplate"
	"mqsspulse/internal/pulse"
	"mqsspulse/internal/qdmi"
	"mqsspulse/internal/qir"
	"mqsspulse/internal/qpi"
	"mqsspulse/internal/qrm"
	"mqsspulse/internal/readout"
	"mqsspulse/internal/telemetry"
	"mqsspulse/internal/vqe"
	"mqsspulse/internal/waveform"
)

// Programming interface (paper Section 5.1).
type (
	// Circuit is a mixed gate/pulse kernel under construction.
	Circuit = qpi.Circuit
	// Result carries measured counts.
	Result = qpi.Result
	// Backend executes finished kernels asynchronously.
	Backend = qpi.Backend
	// Handle is a future tracking one asynchronous execution.
	Handle = qpi.Handle
	// ExecStatus is the lifecycle state of an execution.
	ExecStatus = qpi.ExecStatus
	// ExecConfig is the resolved submission configuration backends receive.
	ExecConfig = qpi.ExecConfig
	// ExecOption tunes one submission (shots, priority, deadline, ...).
	ExecOption = qpi.ExecOption
)

// Execution states.
const (
	ExecQueued    = qpi.ExecQueued
	ExecRunning   = qpi.ExecRunning
	ExecDone      = qpi.ExecDone
	ExecFailed    = qpi.ExecFailed
	ExecCancelled = qpi.ExecCancelled
)

// DefaultShots is the shot count used when no WithShots option is given.
const DefaultShots = qpi.DefaultShots

// ErrCancelled is the sentinel wrapped into the error of a cancelled job;
// test with errors.Is.
var ErrCancelled = qdmi.ErrCancelled

// ErrOverloaded is the sentinel wrapped into submissions rejected by the
// scheduler's admission control (the target queue is at its depth limit);
// callers should back off and retry. It crosses the remote wire protocol,
// so errors.Is works against remote submissions too.
var ErrOverloaded = qrm.ErrOverloaded

// ErrNoSuchTarget is the sentinel wrapped into submissions naming an
// unknown device or pool; test with errors.Is.
var ErrNoSuchTarget = qrm.ErrNoSuchTarget

// ErrStaleCalibration is the sentinel wrapped into the failure of a job
// whose payload was compiled against a calibration epoch the target device
// has since left; recompile and resubmit. It crosses the remote wire
// protocol, so errors.Is works against remote submissions too.
var ErrStaleCalibration = qrm.ErrStaleCalibration

// WithShots sets the number of measurement shots.
func WithShots(n int) ExecOption { return qpi.WithShots(n) }

// WithPriority sets the scheduler priority (higher dispatches first).
func WithPriority(p int) ExecOption { return qpi.WithPriority(p) }

// WithTag attaches a caller label to the submission.
func WithTag(tag string) ExecOption { return qpi.WithTag(tag) }

// WithPool targets a named device pool instead of the backend's default
// device: the scheduler places the job on the least-loaded compatible pool
// member (see Scheduler.RegisterPool).
func WithPool(name string) ExecOption { return qpi.WithPool(name) }

// WithShotWorkers asks the executing device to spread the job's
// independent shots across n parallel workers (and, for open-system
// simulations, lets the Auto integrator switch to Monte-Carlo trajectory
// unraveling). Zero keeps the device's configured default; shot outcomes
// never depend on worker scheduling or completion order.
func WithShotWorkers(n int) ExecOption { return qpi.WithShotWorkers(n) }

// WithDeadline bounds the execution; past it the job is cancelled.
func WithDeadline(t time.Time) ExecOption { return qpi.WithDeadline(t) }

// WithTimeout is WithDeadline relative to now.
func WithTimeout(d time.Duration) ExecOption { return qpi.WithTimeout(d) }

// WithoutCache bypasses compilation caches for this submission.
func WithoutCache() ExecOption { return qpi.WithoutCache() }

// WithTraceID sets the telemetry trace identifier instead of letting the
// stack mint one — the hook for correlating a submission with an external
// tracing system.
func WithTraceID(id string) ExecOption { return qpi.WithTraceID(id) }

// Telemetry: per-job lifecycle traces and fleet-wide latency metrics.
// Every submission carries a trace ID from qpi.Run down to the device (and
// across the remote wire); its spans come back through Handle.Timeline,
// and stage/queue-wait histograms aggregate in the client's registry
// (Stack.Telemetry, Client.Telemetry).
type (
	// Timeline is one job's ordered lifecycle spans.
	Timeline = telemetry.Timeline
	// Span is one recorded lifecycle stage of a job.
	Span = telemetry.Span
	// SpanID identifies a span within its timeline.
	SpanID = telemetry.SpanID
	// Stage labels a lifecycle span (compile, queue-wait, dispatch, ...).
	Stage = telemetry.Stage
	// TelemetryRegistry aggregates fleet-wide counters and histograms.
	TelemetryRegistry = telemetry.Registry
	// TelemetrySnapshot is a point-in-time copy of a registry's metrics.
	TelemetrySnapshot = telemetry.Snapshot
	// TelemetryHistogram is one latency histogram's snapshot (count, mean,
	// p50/p95/p99, max, log2 buckets).
	TelemetryHistogram = telemetry.HistogramSnapshot
)

// Lifecycle stages recorded on job timelines.
const (
	StageCompile       = telemetry.StageCompile
	StageCacheHit      = telemetry.StageCacheHit
	StageCacheMiss     = telemetry.StageCacheMiss
	StageBind          = telemetry.StageBind
	StageQueueWait     = telemetry.StageQueueWait
	StageDispatch      = telemetry.StageDispatch
	StageDeviceExecute = telemetry.StageDeviceExecute
	StageReadoutPost   = telemetry.StageReadoutPost
)

// Acquisition and readout (measurement levels, discriminators, error
// mitigation).
type (
	// MeasLevel selects raw/kerneled/discriminated readout records.
	MeasLevel = readout.MeasLevel
	// MeasReturn selects per-shot or shot-averaged records.
	MeasReturn = readout.MeasReturn
	// IQ is one point in the in-phase/quadrature plane.
	IQ = readout.IQ
	// ReadoutKernel integrates a raw capture trace into an IQ point.
	ReadoutKernel = readout.Kernel
	// Discriminator classifies an IQ point into a bit.
	Discriminator = readout.Discriminator
	// ReadoutConfusion is a per-qubit 2×2 assignment matrix.
	ReadoutConfusion = readout.Confusion
	// ReadoutMitigator undoes per-qubit assignment errors in counts.
	ReadoutMitigator = readout.Mitigator
	// ReadoutCalibResult reports a readout calibration.
	ReadoutCalibResult = calib.ReadoutCalibResult
)

// Measurement levels and return modes.
const (
	MeasDiscriminated = readout.LevelDiscriminated
	MeasKerneled      = readout.LevelKerneled
	MeasRaw           = readout.LevelRaw
	MeasReturnSingle  = readout.ReturnSingle
	MeasReturnAverage = readout.ReturnAverage
)

// WithMeasLevel selects the measurement level of the returned data.
func WithMeasLevel(l MeasLevel) ExecOption { return qpi.WithMeasLevel(l) }

// WithMeasReturn selects per-shot or shot-averaged acquisition records.
func WithMeasReturn(r MeasReturn) ExecOption { return qpi.WithMeasReturn(r) }

// TrainLinearDiscriminator fits a Fisher/LDA discriminator from labeled
// prep-0/prep-1 IQ shots.
func TrainLinearDiscriminator(zeros, ones []IQ) (Discriminator, error) {
	return readout.TrainLinear(zeros, ones)
}

// TrainCentroidDiscriminator fits a nearest-mean discriminator.
func TrainCentroidDiscriminator(zeros, ones []IQ) (Discriminator, error) {
	return readout.TrainCentroid(zeros, ones)
}

// EncodeDiscriminator serializes a trained model to JSON.
func EncodeDiscriminator(d Discriminator) ([]byte, error) {
	return readout.EncodeDiscriminator(d)
}

// DecodeDiscriminator is the inverse of EncodeDiscriminator.
func DecodeDiscriminator(data []byte) (Discriminator, error) {
	return readout.DecodeDiscriminator(data)
}

// NewReadoutMitigator builds a confusion-matrix mitigator; bits[i] is the
// classical-bit position matrix mats[i] corrects.
func NewReadoutMitigator(bits []int, mats []ReadoutConfusion) (*ReadoutMitigator, error) {
	return readout.NewMitigator(bits, mats)
}

// ReadoutCalibrate trains a discriminator from prep-0/prep-1 experiments
// and writes the measured assignment fidelity back into the device's
// calibration table.
func ReadoutCalibrate(ctx context.Context, dev *SimDevice, site, shots int) (*ReadoutCalibResult, error) {
	return calib.ReadoutCalibrate(ctx, dev, site, shots)
}

// MeasureReadoutMitigator measures per-site assignment matrices through
// prep experiments and builds the mitigator for kernels measuring
// sites[i] into classical bit i.
func MeasureReadoutMitigator(ctx context.Context, dev Device, sites []int, shots int) (*ReadoutMitigator, error) {
	return calib.ReadoutMitigator(ctx, dev, sites, shots)
}

// NewCircuit begins a kernel (the paper's qCircuitBegin).
func NewCircuit(name string, qubits, classical int) *Circuit {
	return qpi.NewCircuit(name, qubits, classical)
}

// Run executes a finished kernel on a backend under ctx — the
// context-aware form of the paper's qExecute. Cancelling ctx (or passing
// WithDeadline/WithTimeout) cancels the job wherever it is: queued work
// never reaches the device and running work is aborted where the device
// supports it.
func Run(ctx context.Context, b Backend, c *Circuit, opts ...ExecOption) (*Result, error) {
	return qpi.Run(ctx, b, c, opts...)
}

// Start submits a kernel asynchronously and returns its Handle future.
func Start(ctx context.Context, b Backend, c *Circuit, opts ...ExecOption) (Handle, error) {
	return qpi.Start(ctx, b, c, opts...)
}

// Execute dispatches a finished kernel synchronously, detached from any
// context.
//
// Deprecated: use Run, which threads a context.Context through every
// layer and accepts functional options.
func Execute(b Backend, c *Circuit, shots int) (*Result, error) { return qpi.Execute(b, c, shots) }

// Port kinds (used to locate drive/readout channels by inspection).
const (
	PortDrive   = pulse.PortDrive
	PortCoupler = pulse.PortCoupler
	PortReadout = pulse.PortReadout
)

// Pulse abstractions (paper Section 4).
type (
	// Port is a hardware I/O channel.
	Port = pulse.Port
	// Frame is the stateful carrier abstraction.
	Frame = pulse.Frame
	// Waveform is a sampled pulse envelope.
	Waveform = waveform.Waveform
	// Envelope is a parametric pulse shape.
	Envelope = waveform.Envelope
	// Gaussian, DRAG, GaussianSquare, Constant are common envelopes.
	Gaussian       = waveform.Gaussian
	DRAG           = waveform.DRAG
	GaussianSquare = waveform.GaussianSquare
	Constant       = waveform.Constant
)

// Devices and QDMI (paper Section 5.3).
type (
	// Device is the QDMI device interface.
	Device = qdmi.Device
	// SimDevice is a simulated quantum accelerator.
	SimDevice = devices.SimDevice
	// DeviceConfig assembles a custom simulated device.
	DeviceConfig = devices.Config
	// SiteConfig describes one qubit site of a custom device.
	SiteConfig = devices.SiteConfig
	// CouplingConfig describes a coupler between adjacent sites.
	CouplingConfig = devices.CouplingConfig
	// PulseImpl is a calibrated pulse implementation of an operation.
	PulseImpl = qdmi.PulseImpl
	// PulseStep is one element of a PulseImpl.
	PulseStep = qdmi.PulseStep
	// Driver is the QDMI device registry.
	Driver = qdmi.Driver
	// Session is a client's handle on the driver.
	Session = qdmi.Session
	// Job is an asynchronous device execution.
	Job = qdmi.Job
)

// Program formats accepted by SubmitJob.
const (
	FormatQIRBase  = qdmi.FormatQIRBase
	FormatQIRPulse = qdmi.FormatQIRPulse
)

// NewSuperconductingDevice builds the transmon preset.
func NewSuperconductingDevice(name string, sites int, seed int64) (*SimDevice, error) {
	return devices.Superconducting(name, sites, seed)
}

// NewTrappedIonDevice builds the ion-trap preset.
func NewTrappedIonDevice(name string, sites int, seed int64) (*SimDevice, error) {
	return devices.TrappedIon(name, sites, seed)
}

// NewNeutralAtomDevice builds the neutral-atom preset.
func NewNeutralAtomDevice(name string, sites int, seed int64) (*SimDevice, error) {
	return devices.NeutralAtom(name, sites, seed)
}

// NewDevice builds a simulated device from a custom configuration.
func NewDevice(cfg DeviceConfig) (*SimDevice, error) { return devices.New(cfg) }

// NewDriver creates an empty QDMI device registry.
func NewDriver() *Driver { return qdmi.NewDriver() }

// Client and adapters (paper Fig. 2).
type (
	// Client is the MQSS client: compile → schedule → execute.
	Client = client.Client
	// NativeAdapter is the compiled QPI adapter.
	NativeAdapter = client.NativeAdapter
	// InterpretedAdapter parses textual programs per submission.
	InterpretedAdapter = client.InterpretedAdapter
	// RemoteAdapter submits payloads over TCP.
	RemoteAdapter = client.RemoteAdapter
	// Server exposes a client's devices over TCP.
	Server = client.Server
	// SubmitOptions tunes a submission.
	SubmitOptions = client.SubmitOptions
	// BatchResult pairs one batch entry's outcome with its error.
	BatchResult = client.BatchResult
	// CacheStats snapshots the client's lowering-cache counters (hits,
	// misses, LRU evictions, calibration-epoch invalidations).
	CacheStats = client.CacheStats
	// Ticket tracks a queued job.
	Ticket = qrm.Ticket
	// Scheduler is the Quantum Resource Manager: the fleet scheduler
	// reachable through Client.QRM (pools, concurrency, admission
	// control, fleet stats).
	Scheduler = qrm.Scheduler
	// SchedulerStats is a fleet-wide scheduler counter snapshot.
	SchedulerStats = qrm.Stats
	// DeviceStats is the per-device slice of a SchedulerStats snapshot.
	DeviceStats = qrm.DeviceStats
	// PoolStats is the per-pool slice of a SchedulerStats snapshot.
	PoolStats = qrm.PoolStats
	// ServerOption tunes a Server (idle timeouts, job time caps).
	ServerOption = client.ServerOption
	// RemoteOption tunes a RemoteAdapter (dial timeouts).
	RemoteOption = client.RemoteOption
)

// WithServerBaseContext bounds every job the server runs.
func WithServerBaseContext(ctx context.Context) ServerOption {
	return client.WithServerBaseContext(ctx)
}

// WithServerIdleTimeout drops connections idle for the duration.
func WithServerIdleTimeout(d time.Duration) ServerOption {
	return client.WithServerIdleTimeout(d)
}

// WithServerMaxJobTime caps each remote job's wall-clock time.
func WithServerMaxJobTime(d time.Duration) ServerOption {
	return client.WithServerMaxJobTime(d)
}

// WithDialTimeout bounds remote connection establishment.
func WithDialTimeout(d time.Duration) RemoteOption {
	return client.WithDialTimeout(d)
}

// Stack bundles driver, session, and client over a set of devices — the
// one-call setup used by the examples.
type Stack struct {
	Driver  *Driver
	Session *Session
	Client  *Client
}

// NewStack registers the devices and wires up the client.
func NewStack(devs ...Device) (*Stack, error) {
	drv := qdmi.NewDriver()
	for _, d := range devs {
		if err := drv.RegisterDevice(d); err != nil {
			return nil, err
		}
	}
	ses := drv.OpenSession()
	return &Stack{Driver: drv, Session: ses, Client: client.New(ses)}, nil
}

// Close releases the stack.
func (s *Stack) Close() {
	s.Client.Close()
	s.Session.Close()
}

// Telemetry snapshots the stack's fleet metrics: every counter and latency
// histogram (stage durations, per-device and per-pool queue-wait,
// scheduler and cache counters) accumulated since the stack was built.
func (s *Stack) Telemetry() TelemetrySnapshot { return s.Client.Telemetry() }

// NewServer exposes a client over TCP.
func NewServer(c *Client, addr string, opts ...ServerOption) (*Server, error) {
	return client.NewServer(c, addr, opts...)
}

// NewRemoteAdapter dials a remote MQSS client, detached from any context.
func NewRemoteAdapter(addr string, opts ...RemoteOption) (*RemoteAdapter, error) {
	return client.NewRemoteAdapter(addr, opts...)
}

// NewRemoteAdapterCtx dials a remote MQSS client under ctx.
func NewRemoteAdapterCtx(ctx context.Context, addr string, opts ...RemoteOption) (*RemoteAdapter, error) {
	return client.NewRemoteAdapterCtx(ctx, addr, opts...)
}

// Parametric templates: compile once, bind millions of times. A Template
// wraps a kernel with unbound parameters (built via the Circuit's RXP,
// RYP, RZP, FrameChangeP, DelayP, WaveformEnvelopeP methods); the client
// lowers it once per (template, device, calibration epoch) and every sweep
// point afterwards is a cheap bind — no recompilation.
type (
	// Template is a parametric kernel with declared parameter ranges.
	Template = ptemplate.Template
	// TemplateParam declares one symbolic parameter and its legal range.
	TemplateParam = ptemplate.Param
	// Bindings maps parameter names to concrete values for one sweep point.
	Bindings = ptemplate.Bindings
	// CompiledTemplate is a lowered parametric payload with unbound slots.
	CompiledTemplate = ptemplate.Compiled
	// ParamExpr is an affine symbolic parameter expression (scale·p+offset).
	ParamExpr = qpi.ParamExpr
)

// ErrBadParam is the sentinel wrapped into bind-time parameter rejections
// (missing, undeclared, non-finite, or out-of-range values); test with
// errors.Is. It crosses the remote wire protocol.
var ErrBadParam = ptemplate.ErrBadParam

// Sym references a named template parameter directly (scale 1, offset 0).
func Sym(name string) *ParamExpr { return qpi.Sym(name) }

// SymAffine references a named template parameter through an affine map:
// the bound value is scale·p + offset.
func SymAffine(name string, scale, offset float64) *ParamExpr {
	return qpi.SymAffine(name, scale, offset)
}

// NewTemplate validates and wraps a finished parametric kernel; params
// must declare exactly the parameters the kernel references, and the
// declared ranges must keep every symbolic angle, delay, and amplitude
// inside hardware limits (proven here, once, rather than per point).
func NewTemplate(c *Circuit, params ...TemplateParam) (*Template, error) {
	return ptemplate.New(c, params...)
}

// CompileTemplate lowers a template for a device through the client's
// lowering cache: one compilation per (template fingerprint, device,
// calibration epoch), served cache-hot afterwards (see CacheStats.Binds).
func (s *Stack) CompileTemplate(t *Template, device string) (*CompiledTemplate, error) {
	return s.Client.CompileTemplate(t, device)
}

// RunSweep executes one job per bindings entry and waits for all of them:
// the template compiles at most once and every point dispatches as a
// (compiled template, bindings) pair bound after the calibration-epoch
// check. Results are parallel to bindings, with per-point failures
// (including ErrBadParam rejections) reported in place.
func (s *Stack) RunSweep(ctx context.Context, t *Template, device string, bindings []Bindings, opts SubmitOptions) ([]BatchResult, error) {
	return s.Client.RunSweep(ctx, t, device, bindings, opts)
}

// SubmitSweep enqueues one job per bindings entry without waiting; the
// returned ticket and error slices are parallel to bindings.
func (s *Stack) SubmitSweep(ctx context.Context, t *Template, device string, bindings []Bindings, opts SubmitOptions) ([]*Ticket, []error) {
	return s.Client.SubmitSweepCtx(ctx, t, device, bindings, opts)
}

// Compiler and exchange format (paper Sections 5.2, 5.4).
type (
	// CompileResult bundles MLIR, QIR, payload and timings.
	CompileResult = compiler.Result
	// MLIRModule is a pulse-dialect module.
	MLIRModule = mlir.Module
	// QIRModule is a QIR exchange module.
	QIRModule = qir.Module
)

// Compile JIT-compiles a kernel for a device (QPI → MLIR → passes → QIR).
func Compile(c *Circuit, dev Device) (*CompileResult, error) { return compiler.Compile(c, dev) }

// CompileMLIR compiles MLIR text for a device.
func CompileMLIR(src string, dev Device) (*CompileResult, error) {
	return compiler.CompileMLIRText(src, dev)
}

// ParseMLIR parses pulse-dialect text.
func ParseMLIR(src string) (*MLIRModule, error) { return mlir.Parse(src) }

// ParseQIR parses QIR exchange text.
func ParseQIR(src string) (*QIRModule, error) { return qir.ParseModule(src) }

// Calibration (paper Section 2.1, use case 1).
type (
	// CalibrationTarget is the device surface calibration routines need.
	CalibrationTarget = calib.Target
	// CalibrationPolicy sets a device's calibration cadence.
	CalibrationPolicy = calib.Policy
	// CalibrationScheduler plans and executes routines.
	CalibrationScheduler = calib.Scheduler
	// RabiResult reports an amplitude calibration.
	RabiResult = calib.RabiResult
	// RamseyResult reports a frequency calibration.
	RamseyResult = calib.RamseyResult
)

// RabiCalibrate re-fits the π-pulse amplitude of a site.
func RabiCalibrate(ctx context.Context, dev CalibrationTarget, site, points, shots int) (*RabiResult, error) {
	return calib.RabiCalibrate(ctx, dev, site, points, shots)
}

// RamseyCalibrate re-fits the qubit frequency of a site.
func RamseyCalibrate(ctx context.Context, dev CalibrationTarget, site int, probeHz float64, points, shots int) (*RamseyResult, error) {
	return calib.RamseyCalibrate(ctx, dev, site, probeHz, points, shots)
}

// CalibrationPolicyFor derives a technology-appropriate cadence via QDMI.
func CalibrationPolicyFor(dev Device) (CalibrationPolicy, error) { return calib.PolicyFor(dev) }

// CalibrationEpoch queries a device's calibration epoch through QDMI: a
// counter every calibration mutation increments, keying lowering-cache
// invalidation and dispatch-time staleness checks. Devices predating the
// property answer qdmi.ErrNotSupported.
func CalibrationEpoch(dev Device) (int64, error) { return qdmi.QueryCalibrationEpoch(dev) }

// RamseyErrorBenchmark measures frequency-drift-induced error: a resonant
// sx–idle–sx sequence that lands in |1⟩ when calibration is fresh.
func RamseyErrorBenchmark(ctx context.Context, dev CalibrationTarget, site int, tauSeconds float64, shots int) (float64, error) {
	return calib.RamseyErrorBenchmark(ctx, dev, site, tauSeconds, shots)
}

// PulseTrainBenchmark measures amplitude-drift-induced error via an odd
// π-pulse train.
func PulseTrainBenchmark(ctx context.Context, dev CalibrationTarget, site, n, shots int) (float64, error) {
	return calib.PulseTrainBenchmark(ctx, dev, site, n, shots)
}

// NewCalibrationScheduler builds the cadence tracker.
func NewCalibrationScheduler(dev CalibrationTarget, p CalibrationPolicy) *CalibrationScheduler {
	return calib.NewScheduler(dev, p)
}

// Optimal control (paper Section 2.1, use case 2).
type (
	// ControlSystem is a piecewise-constant control problem.
	ControlSystem = optctl.ControlSystem
	// ControlPulse is a control amplitude table.
	ControlPulse = optctl.Pulse
	// GrapeOptions tunes gradient ascent.
	GrapeOptions = optctl.GrapeOptions
	// GrapeResult reports an optimization.
	GrapeResult = optctl.GrapeResult
	// TransmonXProblem is the canonical mismatch scenario.
	TransmonXProblem = optctl.TransmonXProblem
)

// Grape runs gradient-ascent pulse engineering toward a target unitary.
var Grape = optctl.GrapeUnitary

// RunMismatchStudy compares open/closed/hybrid control under mismatch.
var RunMismatchStudy = optctl.RunMismatchStudy

// TargetX returns the qubit-subspace X gate and the 3-level projector used
// by the transmon control problems.
var TargetX = optctl.TargetX

// VQE (paper Section 2.1, use case 3).
type (
	// PauliHamiltonian is a sum of Pauli terms.
	PauliHamiltonian = vqe.Hamiltonian
	// GateAnsatz is the hardware-efficient gate ansatz.
	GateAnsatz = vqe.GateAnsatz
	// PulseAnsatz is the ctrl-VQE waveform ansatz.
	PulseAnsatz = vqe.PulseAnsatz
	// VQEOptions tunes a run.
	VQEOptions = vqe.Options
	// VQEResult summarizes a run.
	VQEResult = vqe.RunResult
)

// H2Hamiltonian returns the 2-qubit minimal-basis H₂ benchmark.
func H2Hamiltonian() *PauliHamiltonian { return vqe.H2Minimal() }

// NewPulseAnsatz discovers ports/constraints for ctrl-VQE via QDMI.
func NewPulseAnsatz(dev Device, qubits int) (*PulseAnsatz, error) {
	return vqe.NewPulseAnsatz(dev, qubits)
}

// RunVQE minimizes the measured energy over ansatz parameters.
func RunVQE(ctx context.Context, dev Device, h *PauliHamiltonian, a vqe.Ansatz, x0 []float64, opts VQEOptions) (*VQEResult, error) {
	return vqe.Run(ctx, dev, h, a, x0, opts)
}
