package mqsspulse_test

import (
	"context"
	"math"
	"testing"

	mqsspulse "mqsspulse"
)

// readoutPortOf finds the readout channel of a site by port inspection.
func readoutPortOf(t *testing.T, dev mqsspulse.Device, site int) string {
	t.Helper()
	for _, p := range dev.Ports() {
		if p.Kind == mqsspulse.PortReadout && len(p.Sites) == 1 && p.Sites[0] == site {
			return p.ID
		}
	}
	t.Fatalf("device has no readout port for site %d", site)
	return ""
}

// acquireKernel builds the acceptance kernel: excite qubit 0, then open an
// explicit acquisition window on its readout port.
func acquireKernel(t *testing.T, dev mqsspulse.Device, window int64) *mqsspulse.Circuit {
	t.Helper()
	c := mqsspulse.NewCircuit("acquire-e2e", 1, 1)
	c.X(0).Barrier().Acquire(readoutPortOf(t, dev, 0), 0, window)
	if err := c.End(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestAcquireEndToEndAllMeasLevels is the tentpole acceptance test: a
// kernel with an Acquire op runs through qpi.Run → client → QRM → QDMI →
// SimDevice at all three measurement levels.
func TestAcquireEndToEndAllMeasLevels(t *testing.T) {
	dev, err := mqsspulse.NewSuperconductingDevice("acq-e2e", 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	stack, err := mqsspulse.NewStack(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	backend := &mqsspulse.NativeAdapter{Client: stack.Client, Target: dev.Name()}
	ctx := context.Background()
	const window = 96
	const shots = 600

	// Discriminated: plain counts, X ⇒ P(1) ≈ readout fidelity.
	res, err := mqsspulse.Run(ctx, backend, acquireKernel(t, dev, window),
		mqsspulse.WithShots(shots))
	if err != nil {
		t.Fatal(err)
	}
	if res.MeasLevel != mqsspulse.MeasDiscriminated || len(res.IQ) != 0 {
		t.Fatalf("discriminated run returned IQ data: level %v, %d rows", res.MeasLevel, len(res.IQ))
	}
	if p := res.Probability(1); p < 0.9 {
		t.Fatalf("P(1) = %g after X, want ≈ readout fidelity", p)
	}

	// Kerneled: one IQ point per shot, clustered on the |1⟩ side.
	res, err = mqsspulse.Run(ctx, backend, acquireKernel(t, dev, window),
		mqsspulse.WithShots(shots), mqsspulse.WithMeasLevel(mqsspulse.MeasKerneled))
	if err != nil {
		t.Fatal(err)
	}
	if res.MeasLevel != mqsspulse.MeasKerneled {
		t.Fatalf("meas level %v, want kerneled", res.MeasLevel)
	}
	if len(res.IQ) != shots || len(res.Bits) != 1 {
		t.Fatalf("kerneled shape: %d rows × %d bits", len(res.IQ), len(res.Bits))
	}
	pts := res.IQColumn(res.Bits[0])
	if len(pts) != shots {
		t.Fatalf("IQColumn returned %d points", len(pts))
	}
	onSide := 0
	for _, p := range pts {
		if p.I > 0 {
			onSide++
		}
	}
	if frac := float64(onSide) / float64(shots); frac < 0.9 {
		t.Fatalf("only %g of kerneled points on the |1⟩ side", frac)
	}
	if len(res.Raw) != 0 {
		t.Fatal("kerneled run returned raw traces")
	}

	// Raw: full traces of the requested window length, consistent with the
	// kerneled points under boxcar integration.
	rawShots := 50
	res, err = mqsspulse.Run(ctx, backend, acquireKernel(t, dev, window),
		mqsspulse.WithShots(rawShots), mqsspulse.WithMeasLevel(mqsspulse.MeasRaw))
	if err != nil {
		t.Fatal(err)
	}
	if res.MeasLevel != mqsspulse.MeasRaw || len(res.Raw) != rawShots {
		t.Fatalf("raw run shape: level %v, %d trace rows", res.MeasLevel, len(res.Raw))
	}
	for k, shot := range res.Raw {
		if len(shot) != 1 || len(shot[0]) != window {
			t.Fatalf("shot %d: %d traces × %d samples, want 1 × %d", k, len(shot), len(shot[0]), window)
		}
		var acc complex128
		for _, v := range shot[0] {
			acc += v
		}
		acc /= complex(float64(window), 0)
		if math.Abs(real(acc)-res.IQ[k][0].I) > 1e-9 || math.Abs(imag(acc)-res.IQ[k][0].Q) > 1e-9 {
			t.Fatalf("shot %d: boxcar(trace) != kerneled point", k)
		}
	}

	// Averaged return: a single IQ row near the |1⟩ centroid.
	res, err = mqsspulse.Run(ctx, backend, acquireKernel(t, dev, window),
		mqsspulse.WithShots(shots), mqsspulse.WithMeasLevel(mqsspulse.MeasKerneled),
		mqsspulse.WithMeasReturn(mqsspulse.MeasReturnAverage))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IQ) != 1 {
		t.Fatalf("averaged return gave %d rows", len(res.IQ))
	}
	if res.IQ[0][0].I <= 0 {
		t.Fatalf("averaged |1⟩ point on wrong side: %+v", res.IQ[0][0])
	}
}

// TestReadoutCalibrationAndDiscriminatorFidelity covers the calibration
// half of the acceptance criteria: the calib routine trains a
// discriminator whose held-out fidelity reaches the configured per-qubit
// assignment fidelity, and writes it back to the calibration table.
func TestReadoutCalibrationAndDiscriminatorFidelity(t *testing.T) {
	dev, err := mqsspulse.NewSuperconductingDevice("cal-e2e", 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	for site := 0; site < 2; site++ {
		configured := dev.CalibratedReadoutFidelity(site)
		res, err := mqsspulse.ReadoutCalibrate(context.Background(), dev, site, 4000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Fidelity < configured-0.01 {
			t.Fatalf("site %d: held-out fidelity %g below configured %g", site, res.Fidelity, configured)
		}
		if dev.CalibratedReadoutFidelity(site) != res.Fidelity {
			t.Fatalf("site %d: calibration table not updated", site)
		}
		// The serialized model round-trips into a working discriminator.
		back, err := mqsspulse.DecodeDiscriminator(res.Model)
		if err != nil {
			t.Fatal(err)
		}
		if back.Kind() != res.Discriminator.Kind() {
			t.Fatalf("site %d: model kind changed in serialization", site)
		}
	}
}

// TestMitigationOnBiasedPreset covers the mitigation half of the
// acceptance criteria on a deliberately biased-fidelity device.
func TestMitigationOnBiasedPreset(t *testing.T) {
	cfg := mqsspulse.DeviceConfig{
		Name:         "biased",
		Technology:   "superconducting",
		Version:      "test",
		SampleRateHz: 1e9,
		Granularity:  8,
		MinSamples:   8,
		MaxSamples:   1 << 16,

		DriveRabiHz:     40e6,
		GateSamples:     32,
		ReadoutSamples:  96,
		ReadoutFidelity: 0.985,
		Seed:            31,
		MaxShots:        1 << 17,
	}
	cfg.Sites = append(cfg.Sites,
		siteWithFidelity(0.90), siteWithFidelity(0.93))
	dev, err := mqsspulse.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mit, err := mqsspulse.MeasureReadoutMitigator(context.Background(), dev, []int{0, 1}, 6000)
	if err != nil {
		t.Fatal(err)
	}

	stack, err := mqsspulse.NewStack(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	backend := &mqsspulse.NativeAdapter{Client: stack.Client, Target: dev.Name()}

	c := mqsspulse.NewCircuit("x-both", 2, 2)
	c.X(0).X(1).Measure(0, 0).Measure(1, 1)
	if err := c.End(); err != nil {
		t.Fatal(err)
	}
	shots := 8000
	res, err := mqsspulse.Run(context.Background(), backend, c, mqsspulse.WithShots(shots))
	if err != nil {
		t.Fatal(err)
	}
	rawP11 := res.Probability(0b11)
	probs, err := mit.Apply(res.Counts, res.Shots)
	if err != nil {
		t.Fatal(err)
	}
	if probs[0b11] <= rawP11 {
		t.Fatalf("mitigation did not raise P(11): raw %g, mitigated %g", rawP11, probs[0b11])
	}
	if 1-probs[0b11] > (1-rawP11)/2 {
		t.Fatalf("mitigated error %g not well below raw %g", 1-probs[0b11], 1-rawP11)
	}
}

func siteWithFidelity(f float64) mqsspulse.SiteConfig {
	return mqsspulse.SiteConfig{
		Dim: 2, FreqHz: 5e9, T1Seconds: 80e-6, T2Seconds: 60e-6,
		ReadoutFidelity: f,
	}
}

// TestMeasLevelOverRemoteWire checks the acquisition options and IQ data
// cross the TCP submission path.
func TestMeasLevelOverRemoteWire(t *testing.T) {
	dev, err := mqsspulse.NewSuperconductingDevice("remote-acq", 1, 13)
	if err != nil {
		t.Fatal(err)
	}
	stack, err := mqsspulse.NewStack(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	srv, err := mqsspulse.NewServer(stack.Client, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	remote, err := mqsspulse.NewRemoteAdapter(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	kernel := acquireKernel(t, dev, 96)
	payload, format, err := stack.Client.Compile(kernel, dev.Name())
	if err != nil {
		t.Fatal(err)
	}
	shots := 200
	res, err := remote.SubmitPayloadCtx(context.Background(), dev.Name(), payload, format,
		mqsspulse.SubmitOptions{Shots: shots, MeasLevel: mqsspulse.MeasKerneled})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeasLevel != mqsspulse.MeasKerneled {
		t.Fatalf("remote meas level %v", res.MeasLevel)
	}
	if len(res.IQ) != shots || len(res.Bits) != 1 {
		t.Fatalf("remote IQ shape: %d rows, %d bits", len(res.IQ), len(res.Bits))
	}
	onSide := 0
	for _, row := range res.IQ {
		if row[0].I > 0 {
			onSide++
		}
	}
	if frac := float64(onSide) / float64(shots); frac < 0.85 {
		t.Fatalf("remote kerneled points misplaced: %g on |1⟩ side", frac)
	}
}
