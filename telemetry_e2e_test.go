package mqsspulse_test

import (
	"context"
	"sync"
	"testing"
	"time"

	mqsspulse "mqsspulse"
	"mqsspulse/internal/devices"
)

// requireStages fails unless the timeline contains every named stage, and
// returns the first span found for each.
func requireStages(t *testing.T, tl *mqsspulse.Timeline, stages ...mqsspulse.Stage) map[mqsspulse.Stage]mqsspulse.Span {
	t.Helper()
	if tl == nil {
		t.Fatal("handle returned a nil timeline")
	}
	found := make(map[mqsspulse.Stage]mqsspulse.Span, len(stages))
	for _, st := range stages {
		sp, ok := tl.Find(st)
		if !ok {
			t.Fatalf("timeline missing %q span; have %v", st, stageNames(tl))
		}
		found[st] = sp
	}
	return found
}

func stageNames(tl *mqsspulse.Timeline) []mqsspulse.Stage {
	var names []mqsspulse.Stage
	for _, s := range tl.Spans() {
		names = append(names, s.Stage)
	}
	return names
}

// checkTimelineInvariants asserts the structural properties every traced
// job must satisfy: no negative durations, top-level local spans strictly
// ordered by start, and the sum of top-level durations bounded by the
// trace's wall-clock extent (top-level stages are sequential, so overlap
// would mean a bookkeeping bug).
func checkTimelineInvariants(t *testing.T, tl *mqsspulse.Timeline) {
	t.Helper()
	spans := tl.Spans()
	if len(spans) == 0 {
		t.Fatal("timeline recorded no spans")
	}
	var topSum time.Duration
	var prevStart time.Time
	for _, s := range spans {
		if s.Duration < 0 {
			t.Fatalf("%s span has negative duration %v", s.Stage, s.Duration)
		}
		if s.Parent != 0 || s.Remote {
			continue
		}
		if !prevStart.IsZero() && s.Start.Before(prevStart) {
			t.Fatalf("top-level %s span starts before its predecessor", s.Stage)
		}
		prevStart = s.Start
		topSum += s.Duration
	}
	if wall := tl.Wall(); topSum > wall {
		t.Fatalf("top-level stage durations sum to %v, exceeding trace wall time %v", topSum, wall)
	}
}

// TestTelemetryLocalLifecycle traces one job down the native path and
// checks the assembled trace: compile, queue-wait, dispatch, and
// device-execute all present, the caller's trace ID carried through, the
// cache outcome nested under compile, and device execution nested under
// dispatch.
func TestTelemetryLocalLifecycle(t *testing.T) {
	dev, err := devices.New(tinyFleetConfig("tele-local", 11))
	if err != nil {
		t.Fatal(err)
	}
	stack, err := mqsspulse.NewStack(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()

	backend := &mqsspulse.NativeAdapter{Client: stack.Client, Target: "tele-local"}
	h, err := mqsspulse.Start(context.Background(), backend, fleetKernel(t),
		mqsspulse.WithShots(32), mqsspulse.WithTraceID("trace-local-1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	tl := h.Timeline()
	if got := tl.TraceID(); got != "trace-local-1" {
		t.Fatalf("trace ID %q did not survive the stack (want trace-local-1)", got)
	}
	spans := requireStages(t, tl,
		mqsspulse.StageCompile, mqsspulse.StageQueueWait,
		mqsspulse.StageDispatch, mqsspulse.StageDeviceExecute, mqsspulse.StageReadoutPost)
	checkTimelineInvariants(t, tl)

	if spans[mqsspulse.StageQueueWait].Duration < 0 {
		t.Fatalf("negative queue wait %v", spans[mqsspulse.StageQueueWait].Duration)
	}
	if spans[mqsspulse.StageQueueWait].Device != "tele-local" {
		t.Fatalf("queue-wait attributed to %q, want tele-local", spans[mqsspulse.StageQueueWait].Device)
	}
	if got := spans[mqsspulse.StageDeviceExecute].Parent; got != spans[mqsspulse.StageDispatch].ID {
		t.Fatalf("device-execute parent %d, want dispatch span %d", got, spans[mqsspulse.StageDispatch].ID)
	}
	// First compile for this kernel/device: the outcome child must be a miss.
	miss, ok := tl.Find(mqsspulse.StageCacheMiss)
	if !ok {
		t.Fatal("first compile recorded no cache-miss child")
	}
	if miss.Parent != spans[mqsspulse.StageCompile].ID {
		t.Fatalf("cache-miss parent %d, want compile span %d", miss.Parent, spans[mqsspulse.StageCompile].ID)
	}

	// Second run of the same kernel must trace a cache hit instead.
	h2, err := mqsspulse.Start(context.Background(), backend, fleetKernel(t), mqsspulse.WithShots(32))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, ok := h2.Timeline().Find(mqsspulse.StageCacheHit); !ok {
		t.Fatal("warm compile recorded no cache-hit span")
	}
}

// TestTelemetryPoolPath traces a pool-targeted job and checks the fleet
// metrics surface: the handle's timeline satisfies the same invariants as
// the direct path, and the registry accumulates per-pool and per-device
// queue-wait histograms plus consistent scheduler counters.
func TestTelemetryPoolPath(t *testing.T) {
	const jobs = 24
	stack := fleetTestStack(t, 3, time.Millisecond)

	h, err := mqsspulse.Start(context.Background(),
		&mqsspulse.NativeAdapter{Client: stack.Client},
		fleetKernel(t), mqsspulse.WithShots(4), mqsspulse.WithPool("fleet"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	requireStages(t, h.Timeline(),
		mqsspulse.StageCompile, mqsspulse.StageQueueWait,
		mqsspulse.StageDispatch, mqsspulse.StageDeviceExecute)
	checkTimelineInvariants(t, h.Timeline())

	runPoolBatch(t, stack, "fleet", jobs)

	snap := stack.Telemetry()
	const total = jobs + 1 // batch plus the single traced probe
	pool, ok := snap.Histograms["queue_wait/pool/fleet"]
	if !ok {
		t.Fatal("no queue_wait/pool/fleet histogram after a pool batch")
	}
	if pool.Count != total {
		t.Fatalf("pool queue-wait histogram counted %d waits, want %d", pool.Count, total)
	}
	var perDevice int64
	for name, h := range snap.Histograms {
		if len(name) > 18 && name[:18] == "queue_wait/device/" {
			perDevice += h.Count
		}
	}
	if perDevice != total {
		t.Fatalf("per-device queue-wait histograms counted %d waits, want %d", perDevice, total)
	}
	if got := snap.Counters["qrm/submitted"]; got != total {
		t.Fatalf("qrm/submitted = %d, want %d", got, total)
	}
	if got := snap.Counters["qrm/completed"]; got != total {
		t.Fatalf("qrm/completed = %d, want %d", got, total)
	}
	if snap.Counters["qrm/failed"] != 0 || snap.Counters["qrm/cancelled"] != 0 {
		t.Fatalf("unexpected failures in counters: %v", snap.Counters)
	}
	if hits := snap.Counters["client/cache_hits"]; hits != total-1 {
		t.Fatalf("client/cache_hits = %d, want %d (every job after the first)", hits, total-1)
	}
}

// TestTelemetryRemoteWire checks trace context crosses the TCP wire: the
// client-side timeline ends up holding its local compile and dispatch
// spans plus the server-side queue-wait, dispatch, and device-execute
// spans, imported under the wire dispatch span and marked Remote.
func TestTelemetryRemoteWire(t *testing.T) {
	dev, err := devices.New(tinyFleetConfig("tele-remote", 13))
	if err != nil {
		t.Fatal(err)
	}
	stack, err := mqsspulse.NewStack(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	srv, err := mqsspulse.NewServer(stack.Client, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	remote, err := mqsspulse.NewRemoteAdapter(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	tl := stack.Client.NewTimeline("trace-remote-1")
	payload, format, _, err := stack.Client.CompileTraced(fleetKernel(t), dev.Name(), tl)
	if err != nil {
		t.Fatal(err)
	}
	h, err := remote.StartPayloadCtx(context.Background(), dev.Name(), payload, format,
		mqsspulse.SubmitOptions{Shots: 16, Timeline: tl})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if h.Status() != mqsspulse.ExecDone {
		t.Fatalf("remote handle status %v", h.Status())
	}
	if h.Timeline() != tl {
		t.Fatal("remote handle does not expose the caller's timeline")
	}

	spans := requireStages(t, tl,
		mqsspulse.StageCompile, mqsspulse.StageQueueWait,
		mqsspulse.StageDispatch, mqsspulse.StageDeviceExecute)
	if spans[mqsspulse.StageCompile].Remote {
		t.Fatal("compile span marked Remote; it was recorded locally")
	}
	for _, st := range []mqsspulse.Stage{mqsspulse.StageQueueWait, mqsspulse.StageDeviceExecute} {
		if !spans[st].Remote {
			t.Fatalf("%s span not marked Remote; server-side spans did not cross the wire", st)
		}
		if spans[st].Parent == 0 {
			t.Fatalf("imported %s span lost its parent link", st)
		}
	}
	// The first dispatch span by start time is the client-side wire span;
	// a Remote server-side dispatch span must also be present.
	var localDispatch, remoteDispatch bool
	for _, s := range tl.Spans() {
		if s.Stage != mqsspulse.StageDispatch {
			continue
		}
		if s.Remote {
			remoteDispatch = true
		} else {
			localDispatch = true
		}
	}
	if !localDispatch || !remoteDispatch {
		t.Fatalf("want both local and Remote dispatch spans, got local=%v remote=%v",
			localDispatch, remoteDispatch)
	}
}

// TestTelemetryConcurrentJobs hammers one registry from many concurrent
// jobs and snapshot readers — the -race check that the metrics surface
// tolerates the scheduler's parallelism — then verifies the counters
// reconcile exactly.
func TestTelemetryConcurrentJobs(t *testing.T) {
	const (
		workers = 8
		each    = 6
	)
	stack := fleetTestStack(t, 3, 0)
	k := fleetKernel(t)

	var jobWg, readerWg sync.WaitGroup
	errs := make(chan error, workers)
	stop := make(chan struct{})
	// Concurrent snapshot readers race against the recording jobs.
	for i := 0; i < 2; i++ {
		readerWg.Add(1)
		go func() {
			defer readerWg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = stack.Telemetry()
				}
			}
		}()
	}
	var mu sync.Mutex
	var timelines []*mqsspulse.Timeline
	for w := 0; w < workers; w++ {
		jobWg.Add(1)
		go func() {
			defer jobWg.Done()
			backend := &mqsspulse.NativeAdapter{Client: stack.Client}
			for i := 0; i < each; i++ {
				h, err := mqsspulse.Start(context.Background(), backend, k,
					mqsspulse.WithShots(4), mqsspulse.WithPool("fleet"))
				if err != nil {
					errs <- err
					return
				}
				if _, err := h.Wait(context.Background()); err != nil {
					errs <- err
					return
				}
				mu.Lock()
				timelines = append(timelines, h.Timeline())
				mu.Unlock()
			}
		}()
	}
	jobWg.Wait()
	close(stop)
	readerWg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for _, tl := range timelines {
		checkTimelineInvariants(t, tl)
	}

	snap := stack.Telemetry()
	const total = workers * each
	if got := snap.Counters["qrm/submitted"]; got != total {
		t.Fatalf("qrm/submitted = %d, want %d", got, total)
	}
	if got := snap.Counters["qrm/completed"]; got != total {
		t.Fatalf("qrm/completed = %d, want %d", got, total)
	}
	if got := snap.Histograms["stage/queue-wait"].Count; got != total {
		t.Fatalf("stage/queue-wait histogram counted %d, want %d", got, total)
	}
	if got := snap.Counters["client/cache_hits"] + snap.Counters["client/cache_misses"]; got != total {
		t.Fatalf("cache hits+misses = %d, want %d", got, total)
	}
}
