package mqsspulse_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	mqsspulse "mqsspulse"
	"mqsspulse/internal/devices"
)

// tinyFleetConfig is a minimal single-qubit simulator (dim 2, short
// pulses, no couplers): its per-job simulation cost is microseconds, so a
// configured electronics overhead dominates the service time and wall
// clock measures scheduler placement, not Lindblad integration.
func tinyFleetConfig(name string, seed int64) devices.Config {
	return devices.Config{
		Name: name, Technology: "simulator", Version: "tiny-1.0",
		SampleRateHz: 1e9, Granularity: 1, MinSamples: 1, MaxSamples: 1 << 12,
		DriveRabiHz: 250e6, GateSamples: 8, ReadoutSamples: 8,
		ReadoutFidelity: 0.99, Seed: seed, MaxShots: 1 << 12,
		Sites: []devices.SiteConfig{{Dim: 2, FreqHz: 5e9, T1Seconds: 1e-3, T2Seconds: 1e-3}},
	}
}

// fleetTestStack builds n identical single-qubit simulators
// (fleet-0..fleet-(n-1)) with a fixed per-job electronics overhead,
// registered as pool "fleet" with the first device also alone in pool
// "solo" — the 1-vs-n placement comparison rig.
func fleetTestStack(t *testing.T, n int, overhead time.Duration) *mqsspulse.Stack {
	t.Helper()
	if runtime.GOMAXPROCS(0) < 4 {
		prev := runtime.GOMAXPROCS(4)
		t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
	}
	devs := make([]mqsspulse.Device, n)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		dev, err := devices.New(tinyFleetConfig(fmt.Sprintf("fleet-%d", i), int64(7+i)))
		if err != nil {
			t.Fatal(err)
		}
		dev.SetJobOverhead(overhead)
		devs[i], names[i] = dev, dev.Name()
	}
	stack, err := mqsspulse.NewStack(devs...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stack.Close)
	if err := stack.Client.QRM().RegisterPool("fleet", names...); err != nil {
		t.Fatal(err)
	}
	if err := stack.Client.QRM().RegisterPool("solo", names[0]); err != nil {
		t.Fatal(err)
	}
	return stack
}

func fleetKernel(t *testing.T) *mqsspulse.Circuit {
	t.Helper()
	k := mqsspulse.NewCircuit("fleet-probe", 1, 1).X(0).Measure(0, 0)
	if err := k.End(); err != nil {
		t.Fatal(err)
	}
	return k
}

// runPoolBatch dispatches jobs identical kernels at the named pool and
// returns the wall-clock time for the whole batch to complete.
func runPoolBatch(t *testing.T, stack *mqsspulse.Stack, pool string, jobs int) time.Duration {
	t.Helper()
	kernels := make([]*mqsspulse.Circuit, jobs)
	k := fleetKernel(t)
	for i := range kernels {
		kernels[i] = k
	}
	start := time.Now()
	results, err := stack.Client.RunBatch(context.Background(), kernels, "",
		mqsspulse.SubmitOptions{Shots: 4, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
	}
	return time.Since(start)
}

// TestFleetBatchSpeedup is the acceptance check for pool placement: a batch
// across a 4-simulator pool must finish in well under half the
// single-device wall time. The per-job device overhead dominates the
// workload, so ideal placement gives ≈0.25×; the 0.5× bound leaves a 2×
// margin for scheduler and CI jitter.
func TestFleetBatchSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const jobs = 64
	stack := fleetTestStack(t, 4, 8*time.Millisecond)
	// Warm the lowering cache so neither measurement pays the first JIT.
	runPoolBatch(t, stack, "fleet", 4)

	soloTime := runPoolBatch(t, stack, "solo", jobs)
	fleetTime := runPoolBatch(t, stack, "fleet", jobs)
	ratio := float64(fleetTime) / float64(soloTime)
	t.Logf("solo=%v fleet=%v ratio=%.2f", soloTime, fleetTime, ratio)
	if ratio >= 0.5 {
		t.Fatalf("4-device pool took %.2f× the single-device time, want < 0.5×", ratio)
	}

	st := stack.Client.QRM().Stats()
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("fleet-%d", i)
		if st.Devices[name].Dispatched == 0 {
			t.Fatalf("device %s never dispatched (stats %+v)", name, st.Devices)
		}
	}
}

// TestFleetOverloadBackoff exercises admission control end to end: a tiny
// queue bound, a burst bigger than it, and a back-off/retry loop that still
// lands every job.
func TestFleetOverloadBackoff(t *testing.T) {
	stack := fleetTestStack(t, 2, 2*time.Millisecond)
	stack.Client.QRM().SetMaxQueueDepth(4)
	k := fleetKernel(t)

	var tickets []*mqsspulse.Ticket
	rejections := 0
	for submitted := 0; submitted < 32; {
		tk, err := stack.Client.SubmitCtx(context.Background(), k, "",
			mqsspulse.SubmitOptions{Shots: 4, Pool: "fleet"})
		if errors.Is(err, mqsspulse.ErrOverloaded) {
			rejections++
			time.Sleep(2 * time.Millisecond) // back off, then retry
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
		submitted++
	}
	for i, tk := range tickets {
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	st := stack.Client.QRM().Stats()
	if st.Completed != 32 {
		t.Fatalf("completed = %d, want 32", st.Completed)
	}
	if int(st.Rejected) != rejections {
		t.Fatalf("stats.Rejected = %d, caller saw %d", st.Rejected, rejections)
	}
	t.Logf("rejections seen: %d", rejections)
}
