package mqsspulse_test

import (
	"context"
	"testing"

	mqsspulse "mqsspulse"
)

// TestStaleCalibrationRecompile is the end-to-end reproducer for the
// stale-lowering-cache bug: compile and run a kernel, recalibrate the
// device, run again. Before calibration epochs the second run replayed the
// envelope baked at the old calibration (an X pulse at the old π
// amplitude, P(1) ≈ 1 despite the halved table entry); with epochs the
// cache invalidates and the recompiled payload reflects the new amplitude
// (≈ π/2 rotation, P(1) ≈ 0.5). An unchanged device must keep hitting the
// cache.
func TestStaleCalibrationRecompile(t *testing.T) {
	dev, err := mqsspulse.NewSuperconductingDevice("epoch-sc", 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	stack, err := mqsspulse.NewStack(dev)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stack.Close)

	k := mqsspulse.NewCircuit("epoch-probe", 1, 1).X(0).Measure(0, 0)
	if err := k.End(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	run := func() float64 {
		t.Helper()
		res, err := stack.Client.RunCtx(ctx, k, "epoch-sc", mqsspulse.SubmitOptions{Shots: 800})
		if err != nil {
			t.Fatal(err)
		}
		return res.Probability(1)
	}

	if p := run(); p < 0.9 {
		t.Fatalf("freshly calibrated X pulse: P(1) = %g", p)
	}
	// Unchanged calibration: the second submission must hit the cache.
	if p := run(); p < 0.9 {
		t.Fatalf("cached X pulse: P(1) = %g", p)
	}
	if hits := stack.Client.CacheStats().Hits; hits < 1 {
		t.Fatalf("unchanged device missed the cache: hits = %d", hits)
	}

	epochBefore, err := mqsspulse.CalibrationEpoch(dev)
	if err != nil {
		t.Fatal(err)
	}
	dev.SetCalibratedPiAmplitude(0, dev.CalibratedPiAmplitude(0)/2)
	if epochAfter, _ := mqsspulse.CalibrationEpoch(dev); epochAfter != epochBefore+1 {
		t.Fatalf("recalibration did not bump the epoch: %d → %d", epochBefore, epochAfter)
	}

	// The next run must recompile against the new calibration: the halved
	// believed π amplitude now rotates by ≈ π/2. A stale cached payload
	// would keep P(1) ≈ 1.
	if p := run(); p < 0.2 || p > 0.8 {
		t.Fatalf("run after recalibration replayed a stale envelope: P(1) = %g", p)
	}
	st := stack.Client.CacheStats()
	if st.Invalidations < 1 {
		t.Fatalf("recalibration did not invalidate the cached lowering: %+v", st)
	}
}
